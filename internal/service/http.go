package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Mount registers the job API and the probe endpoints on an obs.Server's
// mux, next to /metrics and /live:
//
//	POST   /jobs        submit a JobSpec; 202 + Job, 429 when the queue
//	                    is full (Retry-After set), 503 when draining or
//	                    the workload's breaker is open
//	GET    /jobs        every job, submission order
//	GET    /jobs/{id}   one job
//	DELETE /jobs/{id}   cancel one job
//	GET    /healthz     liveness: 200 while the process serves
//	GET    /readyz      readiness: 503 while draining or queue-saturated
func (s *Service) Mount(srv *obs.Server) {
	srv.HandleFunc("POST /jobs", s.handleSubmit)
	srv.HandleFunc("GET /jobs", s.handleList)
	srv.HandleFunc("GET /jobs/{id}", s.handleJob)
	srv.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	srv.HandleFunc("GET /healthz", s.handleHealthz)
	srv.HandleFunc("GET /readyz", s.handleReadyz)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck — client gone is not actionable
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad job spec: %w", err))
		return
	}
	j, err := s.Submit(spec)
	if err == nil {
		writeJSON(w, http.StatusAccepted, j)
		return
	}
	var full *QueueFullError
	var open *BreakerOpenError
	switch {
	case errors.As(err, &full):
		// Backpressure, the HTTP way: try again once the workers have
		// eaten into the queue.
		w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(full.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.As(err, &open):
		w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(open.RetryAfter)))
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	j, err := s.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports whether the service should receive traffic: not
// while draining (shutdown in progress) and not while the queue is
// saturated (a load balancer should prefer a sibling daemon).
func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	type readiness struct {
		Ready    bool   `json:"ready"`
		Reason   string `json:"reason,omitempty"`
		Queued   int    `json:"queued"`
		Running  int    `json:"running"`
		Draining bool   `json:"draining"`
	}
	s.mu.Lock()
	st := readiness{
		Ready:    true,
		Queued:   len(s.pending),
		Running:  len(s.running),
		Draining: s.draining,
	}
	saturated := len(s.pending) >= s.cfg.QueueDepth
	s.mu.Unlock()
	switch {
	case st.Draining:
		st.Ready, st.Reason = false, "draining"
	case saturated:
		st.Ready, st.Reason = false, "queue saturated"
	}
	if st.Ready {
		writeJSON(w, http.StatusOK, st)
	} else {
		writeJSON(w, http.StatusServiceUnavailable, st)
	}
}

// ceilSeconds renders a Retry-After duration as whole seconds, at least 1.
func ceilSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
