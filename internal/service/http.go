package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/obs/span"
	"repro/internal/tenant"
)

// Mount registers the job API and the probe endpoints on an obs.Server's
// mux, next to /metrics and /live:
//
//	POST   /jobs               submit a JobSpec; 202 + Job, 429 when the
//	                           queue is full (Retry-After set), 503 when
//	                           draining or the workload's breaker is open
//	GET    /jobs               every job, submission order
//	GET    /jobs/{id}          one job
//	GET    /jobs/{id}/events   the job's flight-recorder timeline
//	GET    /jobs/{id}/trace    the job's wall-clock spans as Chrome trace
//	                           JSON (open in Perfetto / chrome://tracing)
//	GET    /jobs/{id}/phases   the job's phase-budget report (wall time
//	                           per phase, % of job, critical path)
//	DELETE /jobs/{id}          cancel one job
//	GET    /healthz            liveness: 200 while the process serves
//	GET    /readyz             readiness: 503 while draining or saturated;
//	                           reports fleet health (degraded when
//	                           registered workers are lost)
//
// With Config.Fleet set, the coordinator endpoints are registered too
// (see fleethttp.go): POST /fleet/workers, /fleet/heartbeat,
// /fleet/lease, /fleet/complete, and the GET /fleet status page.
//
// Every handler runs behind the access middleware: the request gets a
// correlation ID (the caller's X-Request-ID, or a fresh one), the ID is
// echoed on the response, and exactly one access-log line is emitted per
// request — rejections (429/503) included.
func (s *Service) Mount(srv *obs.Server) {
	srv.HandleFunc("POST /jobs", s.access(s.authed(s.handleSubmit)))
	srv.HandleFunc("GET /jobs", s.access(s.handleList))
	srv.HandleFunc("GET /jobs/{id}", s.access(s.handleJob))
	srv.HandleFunc("GET /jobs/{id}/events", s.access(s.handleEvents))
	srv.HandleFunc("GET /jobs/{id}/trace", s.access(s.handleTrace))
	srv.HandleFunc("GET /jobs/{id}/phases", s.access(s.handlePhases))
	srv.HandleFunc("DELETE /jobs/{id}", s.access(s.handleCancel))
	srv.HandleFunc("GET /healthz", s.access(s.handleHealthz))
	srv.HandleFunc("GET /readyz", s.access(s.handleReadyz))
	if s.cfg.Programs != nil {
		srv.HandleFunc("POST /programs", s.access(s.authed(s.handleProgramSubmit)))
		srv.HandleFunc("GET /programs", s.access(s.handlePrograms))
		srv.HandleFunc("GET /programs/{fp}", s.access(s.handleProgram))
		srv.HandleFunc("GET /programs/{fp}/source", s.access(s.handleProgramSource))
	}
	if s.cfg.Fleet != nil {
		s.mountFleet(srv.HandleFunc)
	}
}

// access is the correlation + access-log middleware. It reuses the RED
// middleware's response recorder when the obs.Server layer already
// installed one, so both layers agree on the status code. When the
// request's X-API-Key resolves to a tenant (always, in anonymous mode),
// the tenant ID joins the correlation chain before the request ID —
// every access-log line, job record, and trial line downstream carries
// it — and the tenant's RED counters are bumped.
func (s *Service) access(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = olog.NewRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		ctx := olog.WithRequestID(r.Context(), reqID)
		tenantID := ""
		if t, err := s.cfg.Tenants.Authenticate(r.Header.Get("X-API-Key")); err == nil {
			tenantID = t.ID
			ctx = olog.WithTenantID(ctx, tenantID)
		}
		rec, ok := w.(*obs.ResponseRecorder)
		if !ok {
			rec = obs.NewResponseRecorder(w)
		}
		start := time.Now()
		next(rec, r.WithContext(ctx))
		if s.cfg.Metrics != nil && tenantID != "" {
			s.cfg.Metrics.Counter("service.tenant." + tenantID + ".requests").Inc()
			if rec.Status() >= 400 {
				s.cfg.Metrics.Counter("service.tenant." + tenantID + ".errors").Inc()
			}
		}
		s.log.InfoContext(ctx, "http request",
			"method", r.Method, "path", r.URL.Path,
			"status", rec.Status(), "bytes", rec.Bytes(),
			"duration_us", time.Since(start).Microseconds())
	}
}

// authed guards a mutating endpoint: the request body is capped at
// Config.MaxBodyBytes (reads beyond it fail with *http.MaxBytesError,
// rendered as 413) and an authenticated tenant is required (401
// otherwise; in anonymous mode every request authenticates).
func (s *Service) authed(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		if olog.FromContext(r.Context()).TenantID == "" {
			writeError(w, http.StatusUnauthorized, tenant.ErrUnauthorized)
			return
		}
		next(w, r)
	}
}

// capBody is the body bound without the identity requirement, for the
// fleet wire protocol (workers hold no API keys; the fleet state
// machine authenticates them by worker ID and quarantine instead).
func (s *Service) capBody(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		next(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck — client gone is not actionable
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decodeJSON reads one JSON payload with the shared POST error
// contract: a body over the MaxBytesReader cap answers 413 with a JSON
// error, anything else that fails to parse answers 400. Returns false
// when the response has been written.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeBodyError(w, err)
		return false
	}
	return true
}

// writeBodyError maps a request-body read failure: 413 for the
// MaxBytesReader cap, 400 for everything else.
func writeBodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("service: request body exceeds %d bytes", mbe.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad request payload: %w", err))
}

// writeTenantError maps the tenant layer's rejections: 401 for a
// missing identity, 429 + Retry-After for rate limits (next-token time)
// and quotas (the generic backpressure hint — the resource frees when
// jobs finish or programs are removed). Returns false if err was not a
// tenant rejection.
func (s *Service) writeTenantError(w http.ResponseWriter, err error) bool {
	var rate *tenant.RateLimitError
	var quota *tenant.QuotaError
	switch {
	case errors.As(err, &rate):
		w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(rate.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.As(err, &quota):
		w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(s.cfg.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, tenant.ErrUnauthorized):
		writeError(w, http.StatusUnauthorized, err)
	default:
		return false
	}
	return true
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if err := s.cfg.Tenants.Allow(olog.FromContext(r.Context()).TenantID); err != nil {
		s.count("service.rejected_ratelimit")
		s.writeTenantError(w, err)
		return
	}
	var spec JobSpec
	if !decodeJSON(w, r, &spec) {
		return
	}
	j, err := s.SubmitCtx(r.Context(), spec)
	if err == nil {
		writeJSON(w, http.StatusAccepted, j)
		return
	}
	var full *QueueFullError
	var open *BreakerOpenError
	switch {
	case errors.As(err, &full):
		// Backpressure, the HTTP way: try again once the workers have
		// eaten into the queue.
		w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(full.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.As(err, &open):
		w.Header().Set("Retry-After", strconv.Itoa(ceilSeconds(open.RetryAfter)))
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrUnknownProgram):
		writeError(w, http.StatusNotFound, err)
	case s.writeTenantError(w, err):
		// Concurrent-job quota exhausted (429, Retry-After set).
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleEvents serves the flight recorder's timeline for one job: every
// retained log record whose correlation chain names the job, oldest
// first — the post-mortem view without grepping the terminal log.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.Job(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if s.cfg.Events == nil {
		writeError(w, http.StatusNotFound, errors.New("service: no flight recorder attached"))
		return
	}
	evs := s.cfg.Events.JobEvents(id)
	if evs == nil {
		evs = []olog.Event{}
	}
	writeJSON(w, http.StatusOK, evs)
}

// handleTrace serves one job's wall-clock spans as Chrome trace-event
// JSON, loadable directly in Perfetto. Unknown job IDs and a tracer-less
// service both 404 with a JSON error body, mirroring handleEvents.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.Job(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if !s.cfg.Spans.Enabled() {
		writeError(w, http.StatusNotFound, errors.New("service: no span tracer attached"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// An emit error after the body started is not reportable to the
	// client; the access log carries the status either way.
	span.WriteChrome(w, s.cfg.Spans.Epoch(), s.cfg.Spans.JobSpans(id)) //nolint:errcheck
}

// handlePhases serves one job's phase-budget report: wall time per named
// phase, the fraction of the job window attributed, and the critical
// path.
func (s *Service) handlePhases(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.Job(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if !s.cfg.Spans.Enabled() {
		writeError(w, http.StatusNotFound, errors.New("service: no span tracer attached"))
		return
	}
	writeJSON(w, http.StatusOK, span.Analyze(id, s.cfg.Spans.JobSpans(id)))
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	j, err := s.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports whether the service should receive traffic: not
// while draining (shutdown in progress) and not while the queue is
// saturated (a load balancer should prefer a sibling daemon). With a
// fleet attached it also reports fleet health: lost workers mark the
// coordinator degraded — still ready (the local fallback and the
// surviving workers keep campaigns moving; dropping the coordinator
// from the balancer would help nothing) but visibly impaired, so
// operators and probes see worker loss without scraping /fleet.
func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	type fleetHealth struct {
		WorkersLive        int  `json:"workers_live"`
		WorkersLost        int  `json:"workers_lost"`
		WorkersQuarantined int  `json:"workers_quarantined"`
		LeasesActive       int  `json:"leases_active"`
		Degraded           bool `json:"degraded"`
	}
	type readiness struct {
		Ready    bool         `json:"ready"`
		Reason   string       `json:"reason,omitempty"`
		Queued   int          `json:"queued"`
		Running  int          `json:"running"`
		Draining bool         `json:"draining"`
		Fleet    *fleetHealth `json:"fleet,omitempty"`
	}
	s.mu.Lock()
	st := readiness{
		Ready:    true,
		Queued:   len(s.pending),
		Running:  len(s.running),
		Draining: s.draining,
	}
	saturated := len(s.pending) >= s.cfg.QueueDepth
	s.mu.Unlock()
	if s.cfg.Fleet != nil {
		snap := s.cfg.Fleet.Snapshot()
		st.Fleet = &fleetHealth{
			WorkersLive:        snap.WorkersLive,
			WorkersLost:        snap.WorkersLost,
			WorkersQuarantined: snap.WorkersQuarantined,
			LeasesActive:       snap.LeasesActive,
			Degraded:           snap.WorkersLost > 0,
		}
	}
	switch {
	case st.Draining:
		st.Ready, st.Reason = false, "draining"
	case saturated:
		st.Ready, st.Reason = false, "queue saturated"
	case st.Fleet != nil && st.Fleet.Degraded:
		st.Reason = fmt.Sprintf("degraded: %d fleet worker(s) lost", st.Fleet.WorkersLost)
	}
	if st.Ready {
		writeJSON(w, http.StatusOK, st)
	} else {
		writeJSON(w, http.StatusServiceUnavailable, st)
	}
}

// ceilSeconds renders a Retry-After duration as whole seconds, at least 1.
func ceilSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
