package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/obs/span"
)

// TestSpanLifecyclePhases proves the service stamps one job's lifecycle
// onto the tracer: queue_wait, attempt, and persist spans, all carrying
// the job's correlation chain.
func TestSpanLifecyclePhases(t *testing.T) {
	tr := span.New(span.Config{})
	s := newTestService(t, Config{Spans: tr})
	s.Start()
	ctx := olog.WithRequestID(context.Background(), "req-lifecycle")
	j, err := s.SubmitCtx(ctx, JobSpec{Bench: "gcc", Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, j.ID, StateDone)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	recs := tr.JobSpans(j.ID)
	byName := map[string]int{}
	for _, r := range recs {
		byName[r.Name]++
		if r.RequestID != "req-lifecycle" {
			t.Errorf("span %s/%s carries request_id %q, want req-lifecycle", r.Layer, r.Name, r.RequestID)
		}
		if r.JobID != j.ID {
			t.Errorf("span %s/%s carries job_id %q, want %s", r.Layer, r.Name, r.JobID, j.ID)
		}
	}
	for _, want := range []string{"queue_wait", "attempt", "persist"} {
		if byName[want] == 0 {
			t.Errorf("no %q span recorded; got %v", want, byName)
		}
	}
	// persist happens at submit, attempt start, and outcome.
	if byName["persist"] < 3 {
		t.Errorf("persist spans = %d, want >= 3 (%v)", byName["persist"], byName)
	}
}

// TestSpanBackoffAndBreakerWait covers the two retroactive waits: the
// backoff sleep between a transient failure and its requeue, and the
// breaker-open window ended by a half-open probe admission.
func TestSpanBackoffAndBreakerWait(t *testing.T) {
	tr := span.New(span.Config{})
	var calls atomic.Int32
	s := newTestService(t, Config{
		Spans:            tr,
		BreakerThreshold: 1,
		BreakerCooldown:  20 * time.Millisecond,
		Runner: func(ctx context.Context, spec JobSpec, ckpt string) (*fault.Result, error) {
			switch calls.Add(1) {
			case 1:
				return nil, errTransient // job 1, attempt 1: forces a backoff
			case 3:
				return nil, MarkPermanent(errors.New("hard failure")) // job 2: opens the breaker
			default:
				return instantRunner(ctx, spec, ckpt)
			}
		},
	})
	s.Start()
	defer s.Shutdown(context.Background())

	// Job 1: transient failure, backoff, then success. The requeue stamps
	// the retroactive backoff span onto the job's correlation chain.
	j1, err := s.Submit(JobSpec{Bench: "gcc", Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, j1.ID, StateDone)
	var sawBackoff bool
	for _, r := range tr.JobSpans(j1.ID) {
		if r.Layer == "service" && r.Name == "backoff" {
			sawBackoff = true
		}
	}
	if !sawBackoff {
		t.Errorf("no backoff span on retried job; spans: %v", names(tr.JobSpans(j1.ID)))
	}

	// Job 2 fails permanently and opens the gcc breaker (threshold 1).
	j2, err := s.Submit(JobSpec{Bench: "gcc", Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, j2.ID, StateFailed)

	// Keep submitting until the cooldown elapses and the half-open probe
	// is admitted; that admission records the breaker_wait span.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j3, err := s.Submit(JobSpec{Bench: "gcc", Trials: 2})
		if err == nil {
			waitState(t, s, j3.ID, StateDone)
			break
		}
		var open *BreakerOpenError
		if !errors.As(err, &open) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never admitted a probe job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var sawBreakerWait bool
	for _, r := range tr.Spans() {
		if r.Layer == "service" && r.Name == "breaker_wait" {
			sawBreakerWait = true
			if r.Dur <= 0 {
				t.Errorf("breaker_wait span has non-positive duration %v", r.Dur)
			}
		}
	}
	if !sawBreakerWait {
		t.Errorf("no breaker_wait span after probe admission; spans: %v", names(tr.Spans()))
	}
}

// names flattens span records to layer/name strings for failure messages.
func names(recs []span.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Layer + "/" + r.Name
	}
	return out
}

// TestShutdownClosesSpanFlusher is the flusher leg of the goroutine-leak
// gate (alongside TestShutdownLeavesNoGoroutines and the SSE-subscriber
// test in internal/obs/server_test.go): Shutdown must stop the tracer's
// background flusher, and the retention ring must keep serving afterward.
func TestShutdownClosesSpanFlusher(t *testing.T) {
	baseline := runtime.NumGoroutine()
	var buf bytes.Buffer // flusher only touches it via the mutexed sink
	tr := span.New(span.Config{Sink: obs.NewJSONLSink(&buf), FlushEvery: time.Millisecond})
	s := newTestService(t, Config{Spans: tr})
	s.Start()
	j, err := s.Submit(JobSpec{Bench: "gcc", Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, j.ID, StateDone)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitForBaseline(t, baseline)
	if len(tr.JobSpans(j.ID)) == 0 {
		t.Fatal("retention ring empty after Shutdown; /trace would 200 with no spans")
	}
}

// TestAbortClosesSpanFlusher: the simulated crash must not leak the
// flusher goroutine inside this process either.
func TestAbortClosesSpanFlusher(t *testing.T) {
	baseline := runtime.NumGoroutine()
	var buf bytes.Buffer
	tr := span.New(span.Config{Sink: obs.NewJSONLSink(&buf), FlushEvery: time.Millisecond})
	s := newTestService(t, Config{Spans: tr})
	s.Start()
	if _, err := s.Submit(JobSpec{Bench: "gcc", Trials: 2}); err != nil {
		t.Fatal(err)
	}
	s.Abort()
	waitForBaseline(t, baseline)
}

func waitForBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestUnknownJobHTTPErrors pins the error contract for per-job routes:
// an unknown ID answers 404 with a JSON error body, and the access log
// still carries one line for the request. /trace and /phases additionally
// 404 (same shape) when the service has no span tracer attached.
func TestUnknownJobHTTPErrors(t *testing.T) {
	cases := []struct {
		name    string
		method  string
		path    string
		spans   bool   // attach a tracer
		mkJob   bool   // submit a real job and substitute its ID
		wantErr string // substring of the JSON error
	}{
		{name: "job unknown", method: "GET", path: "/jobs/absent", wantErr: "no such job"},
		{name: "events unknown", method: "GET", path: "/jobs/absent/events", wantErr: "no such job"},
		{name: "trace unknown", method: "GET", path: "/jobs/absent/trace", spans: true, wantErr: "no such job"},
		{name: "phases unknown", method: "GET", path: "/jobs/absent/phases", spans: true, wantErr: "no such job"},
		{name: "cancel unknown", method: "DELETE", path: "/jobs/absent", wantErr: "no such job"},
		{name: "trace no tracer", method: "GET", path: "/jobs/{id}/trace", mkJob: true, wantErr: "no span tracer"},
		{name: "phases no tracer", method: "GET", path: "/jobs/{id}/phases", mkJob: true, wantErr: "no span tracer"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var logBuf bytes.Buffer
			cfg := Config{Logger: olog.New(&logBuf, olog.Options{})}
			if tc.spans {
				cfg.Spans = span.New(span.Config{})
			}
			s := newTestService(t, cfg)
			defer s.Shutdown(context.Background())
			path := tc.path
			if tc.mkJob {
				j, err := s.Submit(JobSpec{Bench: "gcc", Trials: 1})
				if err != nil {
					t.Fatal(err)
				}
				path = strings.Replace(tc.path, "{id}", j.ID, 1)
			}
			srv := obs.NewServer(obs.ServerConfig{})
			s.Mount(srv)

			rr := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rr, httptest.NewRequest(tc.method, path, nil))

			if rr.Code != 404 {
				t.Fatalf("status = %d, want 404; body %s", rr.Code, rr.Body.String())
			}
			if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			var body struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
				t.Fatalf("body is not JSON: %v (%s)", err, rr.Body.String())
			}
			if !strings.Contains(body.Error, tc.wantErr) {
				t.Errorf("error = %q, want substring %q", body.Error, tc.wantErr)
			}
			// Exactly one access-log line for the request, carrying the 404.
			var accessLines int
			for _, ln := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
				if !strings.Contains(ln, `"http request"`) {
					continue
				}
				accessLines++
				if !strings.Contains(ln, `"status":404`) {
					t.Errorf("access log line lacks status 404: %s", ln)
				}
				if !strings.Contains(ln, `"path":"`+path+`"`) {
					t.Errorf("access log line lacks path %s: %s", path, ln)
				}
			}
			if accessLines != 1 {
				t.Errorf("access-log lines = %d, want 1\n%s", accessLines, logBuf.String())
			}
		})
	}
}

// errTransient marks a failure the retry loop should eat.
var errTransient = MarkTransient(errors.New("transient wobble"))
