package service_test

// End-to-end proof of the span-tracing acceptance criteria, with the
// real fault-campaign engine behind the Runner — the same wiring
// cmd/campaignd uses: a job submitted over HTTP with an explicit
// X-Request-ID must serve a valid Chrome trace at /jobs/{id}/trace where
// every span carries that request ID, a phase-budget report at
// /jobs/{id}/phases attributing >= 95% of the job's wall-clock window to
// named phases, and span.* duration histograms at /metrics.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/service"
)

func TestSpanTraceEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	tr := span.New(span.Config{Metrics: reg})
	s, err := service.New(service.Config{
		StateDir: t.TempDir(),
		Runner:   campaignRunner(t),
		Logf:     t.Logf,
		Metrics:  reg,
		Spans:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	srv := obs.NewServer(obs.ServerConfig{Snapshot: reg.Snapshot})
	s.Mount(srv)
	h := srv.Handler()
	do := func(method, path string, body io.Reader, hdr map[string]string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest(method, path, body)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		return rr
	}

	// Submit a small real campaign with a caller-chosen request ID — the
	// correlation root every span must inherit.
	const reqID = "req-e2e-spans"
	spec := e2eSpec()
	spec.Trials = 60
	spec.CheckpointEvery = 16
	specBody, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	rr := do("POST", "/jobs", bytes.NewReader(specBody), map[string]string{"X-Request-ID": reqID})
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", rr.Code, rr.Body.String())
	}
	var j service.Job
	if err := json.Unmarshal(rr.Body.Bytes(), &j); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(120 * time.Second)
	for {
		rr = do("GET", "/jobs/"+j.ID, nil, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("poll: status %d, body %s", rr.Code, rr.Body.String())
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &j); err != nil {
			t.Fatal(err)
		}
		if j.State == service.StateDone {
			break
		}
		if j.State == service.StateFailed || time.Now().After(deadline) {
			t.Fatalf("job stuck in %s (err=%q)", j.State, j.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// /trace: valid Chrome trace JSON; every complete-span event carries
	// the job's request ID and job ID.
	rr = do("GET", "/jobs/"+j.ID+"/trace", nil, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("trace: status %d, body %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace Content-Type = %q, want application/json", ct)
	}
	var trace struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not Chrome trace JSON: %v", err)
	}
	var spans int
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		spans++
		if got, _ := ev.Args["request_id"].(string); got != reqID {
			t.Errorf("span %q carries request_id %q, want %q", ev.Name, got, reqID)
		}
		if got, _ := ev.Args["job_id"].(string); got != j.ID {
			t.Errorf("span %q carries job_id %q, want %q", ev.Name, got, j.ID)
		}
	}
	if spans == 0 {
		t.Fatal("trace has no complete-span events")
	}

	// /phases: the report must attribute >= 95% of the job's wall-clock
	// window to named phases, and its critical path must be non-empty.
	rr = do("GET", "/jobs/"+j.ID+"/phases", nil, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("phases: status %d, body %s", rr.Code, rr.Body.String())
	}
	var report span.Report
	if err := json.Unmarshal(rr.Body.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if report.JobID != j.ID || report.Spans != spans {
		t.Errorf("report covers job %q / %d spans, want %q / %d", report.JobID, report.Spans, j.ID, spans)
	}
	if report.AttributedPct < 95 {
		t.Errorf("phase report attributes %.1f%% of the job window, want >= 95%%\nphases: %+v",
			report.AttributedPct, report.Phases)
	}
	if len(report.CriticalPath) == 0 {
		t.Error("phase report has no critical path")
	}
	phases := map[string]bool{}
	for _, p := range report.Phases {
		phases[p.Layer+"."+p.Name] = true
	}
	for _, want := range []string{"service.attempt", "fault.golden_run", "fault.shard_exec"} {
		if !phases[want] {
			t.Errorf("phase report missing %q; phases: %+v", want, report.Phases)
		}
	}

	// /metrics: the tracer's duration histograms are part of the scrape.
	rr = do("GET", "/metrics", nil, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rr.Code)
	}
	// PromName sanitizes the dotted snapshot names to underscores.
	for _, want := range []string{"span_service_attempt_us", "span_fault_shard_exec_us"} {
		if !strings.Contains(rr.Body.String(), want) {
			t.Errorf("/metrics missing histogram %q", want)
		}
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The retention ring outlives Shutdown: a drained daemon still
	// answers /trace for finished jobs.
	if len(tr.JobSpans(j.ID)) == 0 {
		t.Error("retention ring empty after Shutdown")
	}
}
