package service_test

// In-process end-to-end proof of the distributed-campaign acceptance
// criterion: a coordinator plus two workers talking over a seeded
// chaos transport (drops, delays, duplicate deliveries), with one worker
// SIGKILLed mid-flight (its context cancelled AND its transport severed,
// so not even a farewell report escapes), must finish the campaign with
// a Result byte-identical to an uninterrupted single-node run.
//
// The chaos knobs are test flags so nightly CI can fuzz them:
//
//	go test ./internal/service/ -run TestFleetChaos \
//	    -chaos-seed 42 -chaos-drop 0.1 -chaos-dup 0.1 -chaos-delay 10ms

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	turnpike "repro"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/service"
)

var (
	chaosSeed  = flag.Int64("chaos-seed", 1, "seed for the fleet chaos transport's fault schedule")
	chaosDrop  = flag.Float64("chaos-drop", 0.05, "per-request drop probability for the fleet chaos transport")
	chaosDup   = flag.Float64("chaos-dup", 0.05, "per-request duplicate-delivery probability for the fleet chaos transport")
	chaosDelay = flag.Duration("chaos-delay", 5*time.Millisecond, "added-latency cap per request for the fleet chaos transport")
)

// killSwitch simulates SIGKILL at the network layer: once thrown, every
// request errors before leaving the worker — no final shard, no failure
// report, no heartbeat.
type killSwitch struct {
	base http.RoundTripper
	dead atomic.Bool
}

func (k *killSwitch) RoundTrip(req *http.Request) (*http.Response, error) {
	if k.dead.Load() {
		return nil, fmt.Errorf("killswitch: worker process is gone")
	}
	return k.base.RoundTrip(req)
}

// fleetPrepare compiles a leased campaign the same way cmd/campaignd's
// worker mode does.
func fleetPrepare() service.PrepareFunc {
	return func(ctx context.Context, spec service.JobSpec, checkpoint string) (*fault.Prepared, error) {
		sc := turnpike.Turnpike
		if spec.Scheme == "turnstile" {
			sc = turnpike.Turnstile
		}
		return turnpike.PrepareFaultCampaign(ctx, spec.Bench, sc, turnpike.FaultCampaignConfig{
			Trials:          spec.Trials,
			Seed:            spec.Seed,
			SBSize:          spec.SBSize,
			WCDL:            spec.WCDL,
			ScalePct:        spec.ScalePct,
			Workers:         spec.Workers,
			Lease:           spec.Lease,
			FailureBudget:   spec.FailureBudget,
			Checkpoint:      checkpoint,
			CheckpointEvery: spec.CheckpointEvery,
		})
	}
}

func TestFleetChaosKillWorkerByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real fleet e2e")
	}
	const fleetTrials = 240
	spec := service.JobSpec{
		Bench: "gcc", Trials: fleetTrials, Seed: 7, ScalePct: 4,
		Workers: 2, Lease: 8, FailureBudget: -1, CheckpointEvery: 4,
	}
	ref, err := turnpike.InjectFaults(spec.Bench, turnpike.Turnpike, turnpike.FaultCampaignConfig{
		Trials: spec.Trials, Seed: spec.Seed, ScalePct: spec.ScalePct,
		Workers: spec.Workers, FailureBudget: spec.FailureBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Coordinator: fleet-executor service with tight liveness timings so
	// the killed worker is declared lost within the test's patience.
	reg := obs.NewRegistry()
	progress := &pipeline.Progress{}
	fleet := service.NewFleet(service.FleetConfig{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatMisses:   3,
		LeaseTTL:          2 * time.Second,
		StealAfter:        500 * time.Millisecond,
		PollInterval:      10 * time.Millisecond,
		Progress:          progress,
		Metrics:           reg,
	})
	svc, err := service.New(service.Config{
		StateDir: t.TempDir(),
		Executor: &service.FleetExecutor{Fleet: fleet, Prepare: fleetPrepare()},
		Fleet:    fleet,
		Progress: progress,
		Metrics:  reg,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer svc.Shutdown(context.Background())
	sampler := pipeline.NewSampler(progress, reg, 20*time.Millisecond, nil)
	sampler.Start()
	defer sampler.Stop()

	obsSrv := obs.NewServer(obs.ServerConfig{Snapshot: reg.Snapshot})
	svc.Mount(obsSrv)
	ts := httptest.NewServer(obsSrv.Handler())
	defer ts.Close()

	// Two workers behind independently seeded chaos transports; worker 1
	// additionally sits behind the kill switch.
	kill := &killSwitch{base: http.DefaultTransport}
	w1Ctx, w1Cancel := context.WithCancel(context.Background())
	w2Ctx, w2Cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() { // stop the workers before the server and service go away
		w1Cancel()
		w2Cancel()
		wg.Wait()
	}()
	workers := make([]*service.WorkerClient, 2)
	for i, wc := range []struct {
		ctx   context.Context
		base  http.RoundTripper
		seed  int64
		label string
	}{
		{w1Ctx, kill, *chaosSeed, "victim"},
		{w2Ctx, http.DefaultTransport, *chaosSeed + 1, "survivor"},
	} {
		w, err := service.NewWorkerClient(service.WorkerConfig{
			Coordinator: ts.URL,
			Prepare:     fleetPrepare(),
			Client: &http.Client{
				Transport: service.NewChaosTransport(wc.base, wc.seed, *chaosDrop, *chaosDup, *chaosDelay),
			},
			RetryBase: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		ctx := wc.ctx
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx) //nolint:errcheck — cancellation is the expected exit
		}()
	}

	// Submit only once both workers are registered: a live remote fleet
	// suppresses the coordinator's local fallback, so the campaign is
	// executed by the workers (the raw local path is covered by the
	// service e2e tests).
	regDeadline := time.Now().Add(30 * time.Second)
	for fleet.Snapshot().WorkersLive < 2 {
		if time.Now().After(regDeadline) {
			t.Fatal("workers never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	settled := func(st service.State) bool {
		return st == service.StateDone || st == service.StateFailed || st == service.StateCanceled
	}

	// Wait until the fleet has accepted remote work mid-flight, then kill
	// worker 1: context gone AND transport severed — a true SIGKILL as
	// seen from the coordinator.
	deadline := time.Now().Add(120 * time.Second)
	for {
		st := fleet.Snapshot()
		accepted := 0
		for _, w := range st.Workers {
			accepted += w.Trials
		}
		if accepted > 0 {
			break
		}
		if jb, err := svc.Job(j.ID); err == nil && settled(jb.State) {
			t.Fatalf("job settled (%s) before any remote shard was accepted", jb.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("no remote shard accepted; workers never engaged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	kill.dead.Store(true)
	w1Cancel()
	t.Logf("killed worker %s mid-campaign", workers[0].ID())

	// The coordinator must declare the victim lost (reclaiming its
	// leases) while the campaign is still in flight — unless the survivor
	// outruns the miss budget entirely, which the trial count prevents in
	// practice.
	sawLost := false
	for !sawLost {
		if fleet.Snapshot().WorkersLost > 0 {
			sawLost = true
			break
		}
		jb, err := svc.Job(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if settled(jb.State) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("killed worker never declared lost")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The surviving worker (with steal + requeue) finishes the job.
	var done *service.Job
	for {
		jb, err := svc.Job(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if jb.State == service.StateDone {
			done = jb
			break
		}
		if settled(jb.State) {
			t.Fatalf("job ended %s: %s", jb.State, jb.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", jb.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := json.Marshal(done.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("fleet result diverged from single-node run\nfleet: %s\nwant:  %s", got, want)
	}
	if done.Result.CompletedTrials != fleetTrials {
		t.Fatalf("completed %d/%d trials", done.Result.CompletedTrials, fleetTrials)
	}
	if !sawLost {
		t.Log("campaign finished before the victim was declared lost; byte identity still held")
	}

	// The fleet gauges are on /metrics in Prometheus exposition.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// The exposition format sanitizes "live.fleet_workers" to
	// "live_fleet_workers" (obs.PromName).
	for _, gauge := range []string{"live_fleet_workers", "live_leases_stolen", "live_leases_expired"} {
		if !strings.Contains(string(body), gauge) {
			t.Errorf("/metrics missing %s", gauge)
		}
	}
}
