package service

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/fault"
)

// The fleet wire protocol, registered by Mount when Config.Fleet is set:
//
//	POST /fleet/workers    register (or re-register) a worker
//	POST /fleet/heartbeat  one worker liveness beat
//	POST /fleet/lease      poll for a trial-range lease (204: no work)
//	POST /fleet/complete   return a finished shard or a failure report
//	GET  /fleet            the coordinator's worker + lease status page
//
// Status mapping shared by the worker endpoints: 404 for unknown worker
// or lease IDs (the worker re-registers / drops the shard and polls on),
// 410 for quarantined workers (the process should exit — nothing it
// sends will ever be trusted again), 422 for shard results that failed
// validation (the submitter has just been quarantined).

// RegisterRequest is the POST /fleet/workers payload. ID is optional:
// workers reconnecting after a coordinator restart send their previous
// ID to keep their identity; new workers get one minted.
type RegisterRequest struct {
	ID   string `json:"id,omitempty"`
	Addr string `json:"addr,omitempty"`
}

// RegisterReply tells the worker its identity and cadences.
type RegisterReply struct {
	WorkerID            string `json:"worker_id"`
	HeartbeatIntervalMS int64  `json:"heartbeat_interval_ms"`
	HeartbeatMisses     int    `json:"heartbeat_misses"`
	PollIntervalMS      int64  `json:"poll_interval_ms"`
}

// WorkerRequest identifies the calling worker (heartbeat and lease
// polls).
type WorkerRequest struct {
	WorkerID string `json:"worker_id"`
}

// CompleteRequest returns one lease's outcome: Shard on success, else a
// classified failure report (the range is requeued; a permanent failure
// quarantines the worker).
type CompleteRequest struct {
	WorkerID string             `json:"worker_id"`
	LeaseID  string             `json:"lease_id"`
	Shard    *fault.ShardResult `json:"shard,omitempty"`
	Class    string             `json:"class,omitempty"` // "transient" | "permanent"
	Error    string             `json:"error,omitempty"`
}

// CompleteReply acknowledges a shard: Fresh is how many trials it newly
// committed (0 = benign duplicate, first-complete-wins).
type CompleteReply struct {
	Fresh int `json:"fresh"`
}

// mountFleet registers the fleet endpoints; called by Mount when
// Config.Fleet is set.
func (s *Service) mountFleet(handle func(pattern string, h func(http.ResponseWriter, *http.Request))) {
	handle("POST /fleet/workers", s.access(s.capBody(s.handleFleetRegister)))
	handle("POST /fleet/heartbeat", s.access(s.capBody(s.handleFleetHeartbeat)))
	handle("POST /fleet/lease", s.access(s.capBody(s.handleFleetLease)))
	handle("POST /fleet/complete", s.access(s.capBody(s.handleFleetComplete)))
	handle("GET /fleet", s.access(s.handleFleetStatus))
}

// fleetStatus maps a fleet state-machine error to its HTTP status.
func fleetStatus(err error) int {
	switch {
	case errors.Is(err, ErrWorkerQuarantined):
		return http.StatusGone
	case errors.Is(err, ErrUnknownWorker), errors.Is(err, ErrUnknownLease):
		return http.StatusNotFound
	case errors.Is(err, fault.ErrShardInvalid), errors.Is(err, fault.ErrShardMismatch):
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

func (s *Service) handleFleetRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	info, err := s.cfg.Fleet.Register(req.ID, req.Addr)
	if err != nil {
		writeError(w, fleetStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, RegisterReply{
		WorkerID:            info.ID,
		HeartbeatIntervalMS: s.cfg.Fleet.HeartbeatInterval().Milliseconds(),
		HeartbeatMisses:     s.cfg.Fleet.cfg.HeartbeatMisses,
		PollIntervalMS:      s.cfg.Fleet.PollInterval().Milliseconds(),
	})
}

func (s *Service) handleFleetHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req WorkerRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad heartbeat payload"))
		return
	}
	if err := s.cfg.Fleet.Heartbeat(req.WorkerID); err != nil {
		writeError(w, fleetStatus(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleFleetLease(w http.ResponseWriter, r *http.Request) {
	var req WorkerRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad lease payload"))
		return
	}
	grant, err := s.cfg.Fleet.Lease(req.WorkerID)
	if err != nil {
		writeError(w, fleetStatus(err), err)
		return
	}
	if grant == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, grant)
}

func (s *Service) handleFleetComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.WorkerID == "" || req.LeaseID == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad complete payload"))
		return
	}
	if req.Shard == nil {
		class := Transient
		if req.Class == Permanent.String() {
			class = Permanent
		}
		if err := s.cfg.Fleet.Fail(req.WorkerID, req.LeaseID, class, req.Error); err != nil {
			writeError(w, fleetStatus(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	fresh, err := s.cfg.Fleet.Complete(req.WorkerID, req.LeaseID, req.Shard)
	if err != nil {
		writeError(w, fleetStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, CompleteReply{Fresh: fresh})
}

func (s *Service) handleFleetStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Fleet.Snapshot())
}
