package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/fault"
	"repro/internal/obs"
)

// The durable half of the service: every job transition rewrites
// jobs.json in the state directory through obs.WriteFileAtomic (temp file
// + rename), so a killed daemon always finds either the previous or the
// next consistent state — never a torn one. Campaign progress itself
// lives in the per-job checkpoint files the fault engine maintains; the
// store only needs to remember which jobs exist and where they stood.

// stateFileVersion 2 added the fleet lease table. Version-1 files (no
// leases) load unchanged — the coordinator starts with an empty table.
const stateFileVersion = 2

// stateFile is the on-disk layout of jobs.json.
type stateFile struct {
	Version int    `json:"version"`
	NextID  int    `json:"next_id"`
	Jobs    []*Job `json:"jobs"`
	// Leases is the fleet coordinator's lease table at the last
	// persist. Informational across restarts: campaign progress lives
	// in the checkpoint files, so restored active leases are recorded
	// as expired — the grants of a dead coordinator life bind no one.
	Leases []Lease `json:"leases,omitempty"`
}

func (s *Service) statePath() string { return filepath.Join(s.cfg.StateDir, "jobs.json") }

// persistLocked rewrites the state file; the caller holds s.mu.
func (s *Service) persistLocked() error {
	sf := stateFile{Version: stateFileVersion, NextID: s.nextID}
	for _, id := range s.order {
		sf.Jobs = append(sf.Jobs, s.jobs[id])
	}
	if s.cfg.Fleet != nil {
		sf.Leases = s.cfg.Fleet.LeaseRecords()
	}
	if len(sf.Leases) == 0 {
		sf.Leases = s.restoredLeases
	}
	err := obs.WriteFileAtomic(s.statePath(), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(sf)
	})
	if err != nil {
		return fmt.Errorf("service: persist state: %w", err)
	}
	return nil
}

// loadState restores jobs from a previous daemon life. A missing file is
// a fresh service. A file that does not parse is moved aside (never
// deleted — it may be wanted for a post-mortem) and the service starts
// fresh with a warning, mirroring the fault engine's
// ErrCheckpointCorrupt convention rather than refusing to boot. Open
// jobs (queued/running/retrying) are re-queued; their campaign
// checkpoints make the resume cheap and their results byte-identical.
func (s *Service) loadState() error {
	path := s.statePath()
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: load state: %w", err)
	}
	var sf stateFile
	if err := json.Unmarshal(b, &sf); err != nil {
		aside := path + ".corrupt"
		if mvErr := os.Rename(path, aside); mvErr != nil {
			return fmt.Errorf("service: state file %s: %w (and moving it aside failed: %v)",
				path, fault.ErrCheckpointCorrupt, mvErr)
		}
		s.logf("warning: %v: state file %s does not parse (%v); moved to %s, starting fresh",
			fault.ErrCheckpointCorrupt, path, err, aside)
		return nil
	}
	if sf.Version != stateFileVersion && sf.Version != 1 {
		return fmt.Errorf("service: state file %s is version %d, this daemon speaks %d",
			path, sf.Version, stateFileVersion)
	}
	for _, l := range sf.Leases {
		if l.State == LeaseActive {
			// A lease granted by the previous coordinator life binds no
			// one now; the worker holding it will fail its completion
			// (unknown lease) and poll for fresh work.
			l.State = LeaseExpired
		}
		s.restoredLeases = append(s.restoredLeases, l)
	}
	s.nextID = sf.NextID
	for _, j := range sf.Jobs {
		if j == nil || j.ID == "" {
			continue
		}
		if j.State.open() {
			// The previous life never finished this job. Running jobs go
			// back to queued (their checkpoint holds the watermark);
			// retrying jobs re-enter the queue immediately — the process
			// death already consumed any backoff the failure deserved.
			j.State = StateQueued
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
	}
	return nil
}
