package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs/olog"
)

// WorkerClient is the fleet's worker side: the loop a campaignd process
// in -worker mode runs. It registers with the coordinator, heartbeats on
// the advertised cadence (concurrently with execution — a long shard
// must not look like a dead worker), polls for trial-range leases,
// executes each on locally prepared simulators, and posts the sealed
// shard back with exponential-backoff retries. Network failures are
// transient (retried); a quarantine (HTTP 410) is final — the process
// exits rather than argue.
type WorkerClient struct {
	cfg      WorkerConfig
	client   *http.Client
	log      *slog.Logger
	id       string
	hbEvery  time.Duration
	pollWait time.Duration

	// prepared caches compiled campaigns by job ID so every lease of the
	// same job reuses the golden fork.
	prepared map[string]*fault.Prepared
}

// WorkerConfig parameterizes NewWorkerClient.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (required), e.g.
	// "http://10.0.0.1:8080".
	Coordinator string
	// Prepare compiles a leased job's campaign locally (required).
	// Called with checkpoint "" — workers never checkpoint; the
	// coordinator owns the campaign's durable state.
	Prepare PrepareFunc
	// ID is the worker's stable identity; "" asks the coordinator to
	// mint one. Reuse the minted ID across reconnects.
	ID string
	// Addr is an advertisement recorded on the coordinator's /fleet
	// page (the worker's own listen address, if it has one).
	Addr string
	// Client is the HTTP client (default http.DefaultClient). Tests
	// wrap its Transport in a ChaosTransport.
	Client *http.Client
	// Logger receives the worker's lifecycle records.
	Logger *slog.Logger
	// ReportRetries caps completion-post attempts. Default 5.
	ReportRetries int
	// RetryBase seeds the completion-post backoff. Default 200ms.
	RetryBase time.Duration
}

// NewWorkerClient validates cfg and builds the client.
func NewWorkerClient(cfg WorkerConfig) (*WorkerClient, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("service: WorkerConfig.Coordinator is required")
	}
	if cfg.Prepare == nil {
		return nil, fmt.Errorf("service: WorkerConfig.Prepare is required")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.ReportRetries <= 0 {
		cfg.ReportRetries = 5
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 200 * time.Millisecond
	}
	w := &WorkerClient{
		cfg:      cfg,
		client:   cfg.Client,
		id:       cfg.ID,
		pollWait: 250 * time.Millisecond,
		hbEvery:  2 * time.Second,
		prepared: map[string]*fault.Prepared{},
	}
	if cfg.Logger != nil {
		w.log = cfg.Logger
	} else {
		w.log = olog.Nop()
	}
	return w, nil
}

// ID returns the worker's identity (set after the first successful
// registration when the coordinator minted it).
func (w *WorkerClient) ID() string { return w.id }

// Run is the worker loop: register, heartbeat, poll, execute — until
// ctx is cancelled (clean exit, the coordinator reclaims our leases by
// heartbeat timeout) or the coordinator quarantines us
// (ErrWorkerQuarantined).
func (w *WorkerClient) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := w.register(ctx); err != nil {
		return err
	}
	var quarantined atomic.Bool
	go w.heartbeatLoop(ctx, func() {
		quarantined.Store(true)
		cancel()
	})
	for ctx.Err() == nil {
		grant, status, err := w.pollLease(ctx)
		switch {
		case ctx.Err() != nil:
		case err != nil:
			w.log.Warn("lease poll failed; backing off", "error", err.Error())
			w.sleep(ctx, w.cfg.RetryBase)
		case status == http.StatusGone:
			quarantined.Store(true)
			cancel()
		case status == http.StatusNotFound:
			// The coordinator restarted and forgot us; re-register under
			// the same ID.
			if err := w.register(ctx); err != nil {
				return err
			}
		case grant == nil:
			w.sleep(ctx, w.pollWait)
		default:
			w.execute(ctx, grant)
		}
	}
	if quarantined.Load() {
		return fmt.Errorf("%w: coordinator rejected worker %s", ErrWorkerQuarantined, w.id)
	}
	return ctx.Err()
}

// register announces the worker, retrying transient failures with
// backoff until ctx dies. A 410 is final.
func (w *WorkerClient) register(ctx context.Context) error {
	delay := w.cfg.RetryBase
	for ctx.Err() == nil {
		var reply RegisterReply
		status, err := w.post(ctx, "/fleet/workers", RegisterRequest{ID: w.id, Addr: w.cfg.Addr}, &reply)
		switch {
		case err == nil && status == http.StatusOK:
			w.id = reply.WorkerID
			if reply.HeartbeatIntervalMS > 0 {
				w.hbEvery = time.Duration(reply.HeartbeatIntervalMS) * time.Millisecond
			}
			if reply.PollIntervalMS > 0 {
				w.pollWait = time.Duration(reply.PollIntervalMS) * time.Millisecond
			}
			w.log.Info("registered with coordinator",
				"worker", w.id, "coordinator", w.cfg.Coordinator,
				"heartbeat_ms", w.hbEvery.Milliseconds())
			return nil
		case err == nil && status == http.StatusGone:
			return fmt.Errorf("%w: coordinator rejected worker %s", ErrWorkerQuarantined, w.id)
		}
		if err != nil {
			w.log.Warn("registration failed; retrying", "error", err.Error())
		} else {
			w.log.Warn("registration rejected; retrying", "status", status)
		}
		w.sleep(ctx, delay)
		if delay *= 2; delay > 5*time.Second {
			delay = 5 * time.Second
		}
	}
	return ctx.Err()
}

// heartbeatLoop beats until ctx dies. 404 re-registers; 410 invokes
// onQuarantine (which cancels the run). Network errors are logged and
// outwaited — the coordinator's miss budget is the real timeout.
func (w *WorkerClient) heartbeatLoop(ctx context.Context, onQuarantine func()) {
	t := time.NewTicker(w.hbEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		status, err := w.post(ctx, "/fleet/heartbeat", WorkerRequest{WorkerID: w.id}, nil)
		switch {
		case err != nil:
			w.log.Warn("heartbeat failed", "error", err.Error())
		case status == http.StatusGone:
			onQuarantine()
			return
		case status == http.StatusNotFound:
			if err := w.register(ctx); err != nil && !errors.Is(err, context.Canceled) {
				w.log.Warn("re-registration after heartbeat 404 failed", "error", err.Error())
			}
		}
	}
}

// pollLease asks for work. grant nil with status 204 means none.
func (w *WorkerClient) pollLease(ctx context.Context) (*LeaseGrant, int, error) {
	var grant LeaseGrant
	status, err := w.post(ctx, "/fleet/lease", WorkerRequest{WorkerID: w.id}, &grant)
	if err != nil || status != http.StatusOK {
		return nil, status, err
	}
	return &grant, status, nil
}

// execute runs one granted lease and reports the outcome.
func (w *WorkerClient) execute(ctx context.Context, grant *LeaseGrant) {
	p, err := w.preparedFor(ctx, grant)
	if err != nil {
		w.report(ctx, grant.LeaseID, Classify(err), err)
		return
	}
	w.log.Info("executing lease",
		"lease", grant.LeaseID, "job", grant.JobID, "lo", grant.Lo, "hi", grant.Hi)
	sh, err := p.RunRange(ctx, grant.Lo, grant.Hi)
	if err != nil {
		// Almost always a cancelled ctx (shutdown); the lease deadline
		// reclaims the range if this report never lands.
		w.report(ctx, grant.LeaseID, Transient, err)
		return
	}
	w.postShard(ctx, grant, sh)
}

// preparedFor returns the cached compiled campaign for the grant's job,
// compiling (and golden-fingerprint-checking) on first use. A
// fingerprint mismatch is permanent: this process compiled a different
// campaign than the coordinator, and no shard it produces can merge.
func (w *WorkerClient) preparedFor(ctx context.Context, grant *LeaseGrant) (*fault.Prepared, error) {
	if p, ok := w.prepared[grant.JobID]; ok {
		return p, nil
	}
	p, err := w.cfg.Prepare(ctx, grant.Spec, "")
	if err != nil {
		return nil, err
	}
	golden := p.GoldenStats()
	if golden.Cycles != grant.GoldenCycles || golden.Insts != grant.GoldenInsts {
		return nil, MarkPermanent(fmt.Errorf(
			"service: worker golden run (%d cycles/%d insts) does not match the coordinator's (%d/%d) for job %s — refusing to execute",
			golden.Cycles, golden.Insts, grant.GoldenCycles, grant.GoldenInsts, grant.JobID))
	}
	// Bound the cache: evict compiled campaigns for other jobs once a
	// few accumulate (campaigns arrive mostly sequentially).
	if len(w.prepared) >= 4 {
		for id := range w.prepared {
			if id != grant.JobID {
				delete(w.prepared, id)
				break
			}
		}
	}
	w.prepared[grant.JobID] = p
	return p, nil
}

// postShard returns a finished shard, retrying transient transport
// failures with exponential backoff. Give-ups are safe: the lease
// deadline requeues the range.
func (w *WorkerClient) postShard(ctx context.Context, grant *LeaseGrant, sh *fault.ShardResult) {
	req := CompleteRequest{WorkerID: w.id, LeaseID: grant.LeaseID, Shard: sh}
	delay := w.cfg.RetryBase
	for attempt := 1; attempt <= w.cfg.ReportRetries; attempt++ {
		var reply CompleteReply
		status, err := w.post(ctx, "/fleet/complete", req, &reply)
		switch {
		case err == nil && status == http.StatusOK:
			w.log.Info("shard accepted",
				"lease", grant.LeaseID, "lo", grant.Lo, "hi", grant.Hi, "fresh", reply.Fresh)
			return
		case err == nil && (status == http.StatusNotFound || status == http.StatusUnprocessableEntity):
			// Unknown lease (job finished or reclaimed) or rejected
			// shard: nothing more to do with this result.
			w.log.Warn("shard dropped by coordinator", "lease", grant.LeaseID, "status", status)
			return
		case err == nil && status == http.StatusGone:
			return // quarantined; heartbeat loop will see it too
		case err != nil && Classify(err) == Permanent:
			w.log.Warn("shard post failed permanently", "lease", grant.LeaseID, "error", err.Error())
			return
		}
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			w.log.Warn("shard post failed; backing off",
				"lease", grant.LeaseID, "attempt", attempt, "error", err.Error())
		} else {
			w.log.Warn("shard post rejected; backing off",
				"lease", grant.LeaseID, "attempt", attempt, "status", status)
		}
		w.sleep(ctx, delay)
		if delay *= 2; delay > 5*time.Second {
			delay = 5 * time.Second
		}
	}
	w.log.Warn("shard post abandoned; the lease deadline will requeue the range",
		"lease", grant.LeaseID)
}

// report posts a failure outcome for a lease (best-effort, one shot —
// the lease deadline is the backstop).
func (w *WorkerClient) report(ctx context.Context, leaseID string, class Class, cause error) {
	req := CompleteRequest{
		WorkerID: w.id, LeaseID: leaseID,
		Class: class.String(), Error: cause.Error(),
	}
	// A cancelled run ctx must still allow the final report out.
	rctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
	defer cancel()
	if _, err := w.post(rctx, "/fleet/complete", req, nil); err != nil {
		w.log.Warn("failure report did not reach the coordinator",
			"lease", leaseID, "error", err.Error())
	}
}

// post sends one JSON request and decodes a 200 response into out.
func (w *WorkerClient) post(ctx context.Context, path string, body, out any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, MarkPermanent(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(buf))
	if err != nil {
		return 0, MarkPermanent(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err // *url.Error — Classify says Transient
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("service: bad coordinator reply for %s: %w", path, err)
		}
		return resp.StatusCode, nil
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck — drain for keep-alive
	return resp.StatusCode, nil
}

func (w *WorkerClient) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
