package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// instantRunner completes every job immediately with a tiny result.
func instantRunner(_ context.Context, spec JobSpec, _ string) (*fault.Result, error) {
	return &fault.Result{CompletedTrials: spec.Trials, Outcomes: map[fault.Outcome]int{fault.Masked: spec.Trials}}, nil
}

// newTestService builds a service over a temp dir with fast timings.
func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	if cfg.Runner == nil {
		cfg.Runner = instantRunner
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = time.Millisecond
	}
	if cfg.BackoffCap == 0 {
		cfg.BackoffCap = 4 * time.Millisecond
	}
	cfg.Logf = t.Logf
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, s *Service, id string, want State) *Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == want {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s (err=%q)", id, j.State, want, j.Error)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestService(t, Config{})
	defer s.Shutdown(context.Background())
	if _, err := s.Submit(JobSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := s.Submit(JobSpec{Bench: "gcc", Scheme: "nope"}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := s.Submit(JobSpec{Bench: "gcc", Trials: -1}); err == nil {
		t.Error("negative trials accepted")
	}
}

// TestBackpressure is the bounded-queue contract: once QueueDepth jobs
// wait, submissions are rejected with *QueueFullError carrying a
// Retry-After hint — over HTTP, a 429 with the header set.
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	progress := &pipeline.Progress{}
	s := newTestService(t, Config{
		QueueDepth:  2,
		Concurrency: 1,
		RetryAfter:  7 * time.Second,
		Progress:    progress,
		Runner: func(ctx context.Context, spec JobSpec, _ string) (*fault.Result, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return instantRunner(ctx, spec, "")
		},
	})
	s.Start()
	defer func() {
		close(release)
		s.Shutdown(context.Background())
	}()

	// One job occupies the worker; wait until it leaves the queue so the
	// backpressure arithmetic below is deterministic.
	first, err := s.Submit(JobSpec{Bench: "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, first.ID, StateRunning)
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(JobSpec{Bench: "gcc"}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if got := progress.JobsQueued.Load(); got != 2 {
		t.Errorf("JobsQueued gauge = %d, want 2", got)
	}
	if !s.Saturated() {
		t.Error("Saturated() = false with a full queue")
	}

	_, err = s.Submit(JobSpec{Bench: "gcc"})
	var full *QueueFullError
	if !errors.As(err, &full) {
		t.Fatalf("over-depth submit: got %v, want QueueFullError", err)
	}
	if full.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v", full.RetryAfter)
	}

	// The same rejection over HTTP: 429 + Retry-After.
	srv := obs.NewServer(obs.ServerConfig{})
	s.Mount(srv)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr.String()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(`{"bench":"gcc"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want 7", ra)
	}
	// /readyz mirrors the saturation.
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("queue saturated")) {
		t.Fatalf("/readyz = %d %s, want 503 queue saturated", resp.StatusCode, body)
	}
}

// TestRetryBackoffThenSuccess: transient failures are retried with
// backoff until MaxAttempts; a success clears the error.
func TestRetryBackoffThenSuccess(t *testing.T) {
	var calls atomic.Int32
	progress := &pipeline.Progress{}
	reg := obs.NewRegistry()
	s := newTestService(t, Config{
		MaxAttempts: 3,
		Progress:    progress,
		Metrics:     reg,
		Runner: func(ctx context.Context, spec JobSpec, _ string) (*fault.Result, error) {
			if calls.Add(1) < 3 {
				return nil, MarkTransient(fmt.Errorf("flaky infrastructure"))
			}
			return instantRunner(ctx, spec, "")
		},
	})
	s.Start()
	defer s.Shutdown(context.Background())

	j, err := s.Submit(JobSpec{Bench: "gcc", Trials: 5})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, j.ID, StateDone)
	if done.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", done.Attempts)
	}
	if done.Error != "" {
		t.Errorf("error not cleared on success: %q", done.Error)
	}
	if done.Result == nil || done.Result.CompletedTrials != 5 {
		t.Errorf("result = %+v", done.Result)
	}
	if got := progress.Retries.Load(); got != 2 {
		t.Errorf("Retries gauge = %d, want 2", got)
	}
	if got := reg.Snapshot().Counters["service.retries"]; got != 2 {
		t.Errorf("service.retries = %d, want 2", got)
	}
}

// TestRetriesExhaustedFails: a job that keeps failing transiently fails
// for good after MaxAttempts, without tripping the breaker (transient
// failures are the retry loop's business, not the breaker's).
func TestRetriesExhaustedFails(t *testing.T) {
	s := newTestService(t, Config{
		MaxAttempts: 2,
		Runner: func(context.Context, JobSpec, string) (*fault.Result, error) {
			return nil, MarkTransient(fmt.Errorf("still flaky"))
		},
	})
	s.Start()
	defer s.Shutdown(context.Background())
	j, err := s.Submit(JobSpec{Bench: "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, s, j.ID, StateFailed)
	if failed.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", failed.Attempts)
	}
	if _, err := s.Submit(JobSpec{Bench: "gcc"}); err != nil {
		t.Errorf("breaker tripped on transient failures: %v", err)
	}
}

// TestBreakerOpensAndCools is the acceptance scenario: a workload
// failing permanently BreakerThreshold times opens its breaker, later
// submissions fail fast (503 + Retry-After over HTTP), and after the
// cool-down one probe is admitted — success closes the breaker.
func TestBreakerOpensAndCools(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	progress := &pipeline.Progress{}
	s := newTestService(t, Config{
		MaxAttempts:      2,
		BreakerThreshold: 2,
		BreakerCooldown:  200 * time.Millisecond,
		Progress:         progress,
		Runner: func(ctx context.Context, spec JobSpec, _ string) (*fault.Result, error) {
			if failing.Load() {
				return nil, MarkPermanent(fmt.Errorf("this workload cannot work"))
			}
			return instantRunner(ctx, spec, "")
		},
	})
	s.Start()
	defer s.Shutdown(context.Background())

	for i := 0; i < 2; i++ {
		j, err := s.Submit(JobSpec{Bench: "gcc"})
		if err != nil {
			t.Fatalf("pre-open submit %d: %v", i, err)
		}
		failed := waitState(t, s, j.ID, StateFailed)
		if failed.Attempts != 1 {
			t.Errorf("permanent failure retried: attempts = %d", failed.Attempts)
		}
	}

	_, err := s.Submit(JobSpec{Bench: "gcc"})
	var open *BreakerOpenError
	if !errors.As(err, &open) {
		t.Fatalf("post-open submit: got %v, want BreakerOpenError", err)
	}
	if open.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v", open.RetryAfter)
	}
	if got := progress.BreakersOpen.Load(); got != 1 {
		t.Errorf("BreakersOpen gauge = %d, want 1", got)
	}
	// A different workload is unaffected.
	if _, err := s.Submit(JobSpec{Bench: "lbm"}); err != nil {
		t.Errorf("breaker leaked across workloads: %v", err)
	}

	// Over HTTP the same rejection is a 503 with Retry-After.
	srv := obs.NewServer(obs.ServerConfig{})
	s.Mount(srv)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Post("http://"+addr.String()+"/jobs", "application/json", strings.NewReader(`{"bench":"gcc"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("breaker over HTTP: %d Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Cool down, stop failing: the probe closes the breaker.
	failing.Store(false)
	time.Sleep(250 * time.Millisecond)
	probe, err := s.Submit(JobSpec{Bench: "gcc"})
	if err != nil {
		t.Fatalf("probe after cooldown rejected: %v", err)
	}
	waitState(t, s, probe.ID, StateDone)
	if _, err := s.Submit(JobSpec{Bench: "gcc"}); err != nil {
		t.Errorf("breaker still open after probe success: %v", err)
	}
}

// TestDrainRequeuesInFlight: a drain whose window expires cancels the
// in-flight job, which goes back to the queue (not to failed), and the
// persisted state lets the next daemon life finish it.
func TestDrainRequeuesInFlight(t *testing.T) {
	dir := t.TempDir()
	started := make(chan struct{}, 1)
	s := newTestService(t, Config{
		StateDir: dir,
		Runner: func(ctx context.Context, _ JobSpec, _ string) (*fault.Result, error) {
			started <- struct{}{}
			<-ctx.Done() // a long campaign that only the drain interrupts
			return nil, fmt.Errorf("interrupted: %w", ctx.Err())
		},
	})
	s.Start()
	j, err := s.Submit(JobSpec{Bench: "gcc", Trials: 7})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got, _ := s.Job(j.ID); got.State != StateQueued || got.Attempts != 0 {
		t.Fatalf("after drain: state=%s attempts=%d, want queued/0", got.State, got.Attempts)
	}
	if _, err := s.Submit(JobSpec{Bench: "gcc"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v", err)
	}

	// Next life: same state dir, a runner that finishes.
	s2 := newTestService(t, Config{StateDir: dir})
	s2.Start()
	defer s2.Shutdown(context.Background())
	done := waitState(t, s2, j.ID, StateDone)
	if done.Result == nil || done.Result.CompletedTrials != 7 {
		t.Fatalf("restored job result = %+v", done.Result)
	}
}

// TestDeadlineOverrunRetries: JobDeadline cuts an attempt short; the
// overrun classifies transient and the retry runs (and here, succeeds).
func TestDeadlineOverrunRetries(t *testing.T) {
	var calls atomic.Int32
	s := newTestService(t, Config{
		JobDeadline: 30 * time.Millisecond,
		MaxAttempts: 2,
		Runner: func(ctx context.Context, spec JobSpec, _ string) (*fault.Result, error) {
			if calls.Add(1) == 1 {
				<-ctx.Done()
				return nil, fmt.Errorf("campaign interrupted: %w", ctx.Err())
			}
			return instantRunner(ctx, spec, "")
		},
	})
	s.Start()
	defer s.Shutdown(context.Background())
	j, err := s.Submit(JobSpec{Bench: "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, j.ID, StateDone)
	if done.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (deadline overrun + retry)", done.Attempts)
	}
}

// TestCancel covers both cancellation paths: a queued job is withdrawn
// without ever running; a running job's context is cancelled and the
// terminal state sticks.
func TestCancel(t *testing.T) {
	release := make(chan struct{})
	var ran atomic.Int32
	s := newTestService(t, Config{
		Concurrency: 1,
		Runner: func(ctx context.Context, spec JobSpec, _ string) (*fault.Result, error) {
			ran.Add(1)
			select {
			case <-release:
				return instantRunner(ctx, spec, "")
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	s.Start()
	defer s.Shutdown(context.Background())

	blocker, err := s.Submit(JobSpec{Bench: "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker.ID, StateRunning)
	queued, err := s.Submit(JobSpec{Bench: "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if j, _ := s.Job(queued.ID); j.State != StateCanceled {
		t.Fatalf("queued cancel: state = %s", j.State)
	}

	if err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker.ID, StateCanceled)
	close(release)
	time.Sleep(10 * time.Millisecond) // the canceled worker must not resurrect the job
	if j, _ := s.Job(blocker.ID); j.State != StateCanceled {
		t.Fatalf("running cancel: state = %s", j.State)
	}
	if n := ran.Load(); n != 1 {
		t.Errorf("runner ran %d times; the withdrawn job must never run", n)
	}
	if err := s.Cancel("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("cancel unknown: %v", err)
	}
}

// TestCorruptStateFileStartsFresh mirrors the fault engine's checkpoint
// convention at the service layer: an unparseable jobs.json is moved
// aside with a warning, never fatal, never silently deleted.
func TestCorruptStateFileStartsFresh(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "jobs.json"), []byte(`{"version":1,"jobs":[{"id`), 0o644); err != nil {
		t.Fatal(err)
	}
	var warned bytes.Buffer
	s, err := New(Config{StateDir: dir, Runner: instantRunner, Logf: func(f string, a ...any) {
		fmt.Fprintf(&warned, f+"\n", a...)
	}})
	if err != nil {
		t.Fatalf("corrupt state file must not prevent boot: %v", err)
	}
	defer s.Shutdown(context.Background())
	if len(s.Jobs()) != 0 {
		t.Errorf("jobs restored from corrupt file: %+v", s.Jobs())
	}
	if !strings.Contains(warned.String(), "checkpoint corrupt") {
		t.Errorf("no corruption warning: %q", warned.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs.json.corrupt")); err != nil {
		t.Errorf("corrupt file not preserved for post-mortem: %v", err)
	}
}

// TestStatePersistedAtomically: every transition leaves a parseable
// state file (WriteFileAtomic), so any kill point yields a loadable
// store.
func TestStatePersistedAtomically(t *testing.T) {
	dir := t.TempDir()
	s := newTestService(t, Config{StateDir: dir})
	s.Start()
	j, err := s.Submit(JobSpec{Bench: "gcc", Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, j.ID, StateDone)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "jobs.json"))
	if err != nil {
		t.Fatal(err)
	}
	var sf stateFile
	if err := json.Unmarshal(b, &sf); err != nil {
		t.Fatalf("state file not parseable: %v\n%s", err, b)
	}
	if len(sf.Jobs) != 1 || sf.Jobs[0].State != StateDone || sf.Jobs[0].Result == nil {
		t.Fatalf("state file contents: %+v", sf)
	}
}

// TestShutdownLeavesNoGoroutines is the goroutine-dump-diff gate: after
// Start, load, and Shutdown, the service must return the runtime to its
// baseline goroutine count — no leaked workers, timers, or publishers.
func TestShutdownLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := newTestService(t, Config{Concurrency: 4})
	s.Start()
	for i := 0; i < 8; i++ {
		if _, err := s.Submit(JobSpec{Bench: "gcc"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClassify pins the shared error taxonomy.
func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"marked transient", MarkTransient(errors.New("x")), Transient},
		{"marked permanent", MarkPermanent(errors.New("x")), Permanent},
		{"deadline", fmt.Errorf("wrap: %w", context.DeadlineExceeded), Transient},
		{"canceled", fmt.Errorf("wrap: %w", context.Canceled), Transient},
		{"checkpoint corrupt", fmt.Errorf("wrap: %w", fault.ErrCheckpointCorrupt), Transient},
		{"invalid config", fmt.Errorf("wrap: %w", fault.ErrInvalidConfig), Permanent},
		{"path error", &fs.PathError{Op: "open", Path: "x", Err: errors.New("disk full")}, Transient},
		{"unknown", errors.New("the simulator is deterministic"), Permanent},
		{"mark overrides taxonomy", MarkTransient(fmt.Errorf("wrap: %w", fault.ErrInvalidConfig)), Transient},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestHTTPJobLifecycle drives the mounted API end to end: submit, list,
// inspect, cancel, probes.
func TestHTTPJobLifecycle(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := newTestService(t, Config{
		Concurrency: 1,
		Runner: func(ctx context.Context, spec JobSpec, _ string) (*fault.Result, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return instantRunner(ctx, spec, "")
		},
	})
	s.Start()
	defer s.Shutdown(context.Background())
	srv := obs.NewServer(obs.ServerConfig{})
	s.Mount(srv)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr.String()

	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"bench":"gcc","trials":9,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || j.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, j)
	}

	resp, err = http.Get(base + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []Job
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != j.ID {
		t.Fatalf("list: %+v", list)
	}

	resp, err = http.Get(base + "/jobs/" + j.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got Job
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Spec.Trials != 9 || got.Spec.Seed != 3 {
		t.Fatalf("inspect: %+v", got)
	}
	if resp, err := http.Get(base + "/jobs/job-424242"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job: %d", resp.StatusCode)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+j.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.State != StateCanceled {
		t.Fatalf("cancel: %+v", got)
	}

	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + probe)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d", probe, resp.StatusCode)
		}
	}
}

// TestReadyzWhileDraining: readiness flips during shutdown while
// liveness keeps answering.
func TestReadyzWhileDraining(t *testing.T) {
	started := make(chan struct{}, 1)
	s := newTestService(t, Config{
		Runner: func(ctx context.Context, _ JobSpec, _ string) (*fault.Result, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	s.Start()
	srv := obs.NewServer(obs.ServerConfig{})
	s.Mount(srv)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr.String()
	if _, err := s.Submit(JobSpec{Bench: "gcc"}); err != nil {
		t.Fatal(err)
	}
	<-started

	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && bytes.Contains(body, []byte("draining")) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never reported draining: %d %s", resp.StatusCode, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz during drain = %d", resp.StatusCode)
	}
	<-drainDone
}
