package service_test

// End-to-end proof of the kill-and-restart determinism acceptance
// criterion, with the real fault-campaign engine behind the Runner: a
// daemon drained mid-campaign (SIGTERM path) and a daemon that dies with
// no drain at all (crash path) must both, after restart, finish every
// job with a Result byte-identical to an uninterrupted run's.

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	turnpike "repro"
	"repro/internal/fault"
	"repro/internal/service"
)

const (
	e2eBench  = "gcc"
	e2eTrials = 240
	e2eSeed   = 7
)

// campaignRunner adapts turnpike.InjectFaultsContext to service.Runner —
// the same wiring cmd/campaignd uses.
func campaignRunner(t *testing.T) service.Runner {
	return func(ctx context.Context, spec service.JobSpec, checkpoint string) (*fault.Result, error) {
		var sc turnpike.Scheme
		switch spec.Scheme {
		case "", "turnpike":
			sc = turnpike.Turnpike
		case "turnstile":
			sc = turnpike.Turnstile
		}
		return turnpike.InjectFaultsContext(ctx, spec.Bench, sc, turnpike.FaultCampaignConfig{
			Trials:          spec.Trials,
			Seed:            spec.Seed,
			SBSize:          spec.SBSize,
			WCDL:            spec.WCDL,
			ScalePct:        spec.ScalePct,
			Workers:         spec.Workers,
			FailureBudget:   spec.FailureBudget,
			Checkpoint:      checkpoint,
			CheckpointEvery: spec.CheckpointEvery,
			Warnf:           t.Logf,
		})
	}
}

func e2eSpec() service.JobSpec {
	return service.JobSpec{
		Bench:           e2eBench,
		Trials:          e2eTrials,
		Seed:            e2eSeed,
		ScalePct:        4,
		Workers:         2,
		FailureBudget:   -1,
		CheckpointEvery: 4, // checkpoint often so the interruption lands mid-campaign
	}
}

// referenceResult runs the identical campaign once, uninterrupted,
// straight through the engine — the bytes every service path must match.
func referenceResult(t *testing.T) []byte {
	t.Helper()
	spec := e2eSpec()
	res, err := turnpike.InjectFaults(spec.Bench, turnpike.Turnpike, turnpike.FaultCampaignConfig{
		Trials: spec.Trials, Seed: spec.Seed, ScalePct: spec.ScalePct,
		Workers: spec.Workers, FailureBudget: spec.FailureBudget,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// interruptMidCampaign starts a service over dir, submits the e2e job,
// waits for the campaign to write its first checkpoint (proof the
// interruption lands mid-flight, not before or after), and hands the
// service to interrupt. Returns the job ID.
func interruptMidCampaign(t *testing.T, dir string, interrupt func(*service.Service)) string {
	t.Helper()
	s, err := service.New(service.Config{StateDir: dir, Runner: campaignRunner(t), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	j, err := s.Submit(e2eSpec())
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, j.Checkpoint)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if got, err := s.Job(j.ID); err == nil && got.State == service.StateDone {
			// The campaign outran us; nothing was interrupted. The sibling
			// runs still prove the criterion unless they all outrun too.
			s.Shutdown(context.Background())
			t.Skipf("campaign finished before the interruption landed; raise e2eTrials")
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never wrote a checkpoint")
		}
		time.Sleep(2 * time.Millisecond)
	}
	interrupt(s)
	return j.ID
}

// finishAndCompare boots a fresh service over the interrupted state dir,
// waits for the restored job to complete, and compares its Result bytes
// to the uninterrupted reference.
func finishAndCompare(t *testing.T, dir, id string, want []byte) {
	t.Helper()
	s, err := service.New(service.Config{StateDir: dir, Runner: campaignRunner(t), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Shutdown(context.Background())
	deadline := time.Now().Add(120 * time.Second)
	for {
		j, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == service.StateDone {
			got, err := json.Marshal(j.Result)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("resumed result differs from uninterrupted run\nresumed: %s\nwant:    %s", got, want)
			}
			if j.Result.CompletedTrials != e2eTrials {
				t.Fatalf("completed %d/%d trials", j.Result.CompletedTrials, e2eTrials)
			}
			return
		}
		if j.State == service.StateFailed || j.State == service.StateCanceled {
			t.Fatalf("restored job ended %s: %s", j.State, j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("restored job stuck in %s", j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrainResumeByteIdentical is the SIGTERM path: Shutdown with an
// already-expired drain window cancels the campaign (which flushes its
// checkpoint), requeues the job, persists; the next daemon life resumes
// from the watermark and must produce the uninterrupted bytes.
func TestDrainResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real campaign e2e")
	}
	want := referenceResult(t)
	dir := t.TempDir()
	id := interruptMidCampaign(t, dir, func(s *service.Service) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // drain window already expired: forces checkpoint-flush path
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	})
	finishAndCompare(t, dir, id, want)
}

// TestCrashResumeByteIdentical is the no-drain path: the daemon dies
// with no checkpoint flush and no state persistence beyond what the
// atomic writes already put on disk. Recovery must still converge on the
// same bytes.
func TestCrashResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real campaign e2e")
	}
	want := referenceResult(t)
	dir := t.TempDir()
	id := interruptMidCampaign(t, dir, func(s *service.Service) {
		s.Abort()
	})
	finishAndCompare(t, dir, id, want)
}
