package service

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/fault"
)

// State is a job's position in its lifecycle. Queued, Running, and
// Retrying jobs are "open": a daemon restart re-queues them and their
// campaigns resume from the checkpoint watermark.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateRetrying State = "retrying" // failed transiently; waiting out its backoff
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// open reports whether the state still owes the submitter a result.
func (s State) open() bool {
	switch s {
	case StateQueued, StateRunning, StateRetrying:
		return true
	}
	return false
}

// JobSpec is the submit payload: which campaign to run. The zero values
// of the numeric knobs defer to the engine's defaults.
type JobSpec struct {
	// Bench is the workload: a built-in benchmark name, or
	// "program:<fingerprint>" referencing a program accepted through
	// POST /programs (required).
	Bench string `json:"bench"`
	// Scheme is "turnpike" (default) or "turnstile".
	Scheme string `json:"scheme,omitempty"`
	Trials int    `json:"trials,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	WCDL   int    `json:"wcdl,omitempty"`
	SBSize int    `json:"sb_size,omitempty"`
	// ScalePct is the workload scale (percent).
	ScalePct int `json:"scale_pct,omitempty"`
	// Workers bounds the campaign's trial pool; the result is identical
	// for every value.
	Workers int `json:"workers,omitempty"`
	// Lease is the number of consecutive trials one dispatch hands a
	// worker (0 = automatic); the result is identical for every value.
	Lease int `json:"lease,omitempty"`
	// FailureBudget caps SDC/crash trials before the campaign aborts
	// (0 = first failure, -1 = record all).
	FailureBudget int `json:"failure_budget,omitempty"`
	// CheckpointEvery is the completed-trial cadence between checkpoint
	// rewrites; the service defaults it to 16 so a drained or killed job
	// loses little work.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// ProgramFingerprint returns the fingerprint of a "program:<fp>" bench,
// or "" for built-in benchmarks.
func (s *JobSpec) ProgramFingerprint() string {
	return strings.TrimPrefix(s.Bench, ProgramBenchPrefix)
}

// IsProgram reports whether the spec targets a submitted program.
func (s *JobSpec) IsProgram() bool {
	return strings.HasPrefix(s.Bench, ProgramBenchPrefix)
}

// Validate rejects specs no runner could execute.
func (s *JobSpec) Validate() error {
	if s.Bench == "" {
		return fmt.Errorf("service: job spec needs a bench")
	}
	if s.IsProgram() && !fingerprintRE.MatchString(s.ProgramFingerprint()) {
		return fmt.Errorf("service: %q is not a program fingerprint (want %s<32 hex chars>)",
			s.Bench, ProgramBenchPrefix)
	}
	switch s.Scheme {
	case "", "turnpike", "turnstile":
	default:
		return fmt.Errorf("service: unknown scheme %q (want turnpike or turnstile)", s.Scheme)
	}
	if s.Trials < 0 {
		return fmt.Errorf("service: negative trial count %d", s.Trials)
	}
	if s.Lease < 0 {
		return fmt.Errorf("service: negative lease size %d", s.Lease)
	}
	if s.Trials > 0 && s.Lease > s.Trials {
		// Rejected rather than silently clamped: a lease wider than the
		// campaign is a spec mistake, and quietly shrinking it would
		// mask typos like swapped lease/trials fields.
		return fmt.Errorf("service: lease size %d exceeds the campaign's %d trials", s.Lease, s.Trials)
	}
	return nil
}

// Workload is the circuit-breaker key: jobs for the same benchmark and
// scheme share one breaker.
func (s *JobSpec) Workload() string {
	scheme := s.Scheme
	if scheme == "" {
		scheme = "turnpike"
	}
	return s.Bench + "/" + scheme
}

// Job is one submitted campaign and its durable lifecycle record — the
// unit persisted to the state file on every transition.
type Job struct {
	ID    string  `json:"id"`
	Spec  JobSpec `json:"spec"`
	State State   `json:"state"`
	// RequestID is the correlation ID of the HTTP request that submitted
	// the job — the key that joins the access log, the job's lifecycle
	// records, and its campaign's per-trial lines. Persisted so log
	// correlation survives a daemon restart.
	RequestID string `json:"request_id,omitempty"`
	// TenantID is the submitting tenant: the outermost correlation link
	// and the identity whose concurrent-job quota slot this job holds
	// while open. Persisted so the slot is re-counted after a restart
	// and released when the restored job finishes.
	TenantID string `json:"tenant_id,omitempty"`
	// Attempts counts started runs of this job (retries included).
	Attempts int `json:"attempts,omitempty"`
	// Error is the most recent failure, kept across retries until a
	// success clears it.
	Error string `json:"error,omitempty"`
	// Result is set once the job is done.
	Result *fault.Result `json:"result,omitempty"`
	// Checkpoint is the campaign's resume file, relative to the state
	// directory.
	Checkpoint string `json:"checkpoint,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`

	// queuedAt is when the job last entered the queue (submission,
	// requeue after backoff, or restore). It feeds the queue-wait
	// histogram and is deliberately not persisted: a wait that spans a
	// daemon restart is a restart artifact, not queue pressure.
	queuedAt time.Time
	// backoffAt is when the job entered its current backoff wait; it
	// bounds the retroactive "backoff" span recorded at requeue time.
	// Not persisted for the same reason queuedAt isn't.
	backoffAt time.Time
}

// clone returns a copy safe to serve to HTTP handlers after the service
// lock is released. Result is shared but immutable once set.
func (j *Job) clone() *Job {
	c := *j
	return &c
}
