package service

import (
	"context"
	"fmt"

	"repro/internal/fault"
)

// Executor is the transport-agnostic campaign execution strategy: the
// service's worker supervisor hands it one job attempt and gets back the
// merged Result. The two implementations are a plain Runner (the whole
// campaign runs in this process — Prepared.Run) and the FleetExecutor
// (the campaign is opened as a Session and its trial ranges are leased
// to a worker fleet, falling back to local execution when no workers are
// live). Either way, checkpoint is the job's resume file and a cancelled
// ctx must flush it and return promptly.
type Executor interface {
	Execute(ctx context.Context, spec JobSpec, checkpoint string) (*fault.Result, error)
}

// Execute makes the legacy Runner func an Executor.
func (r Runner) Execute(ctx context.Context, spec JobSpec, checkpoint string) (*fault.Result, error) {
	return r(ctx, spec, checkpoint)
}

// PrepareFunc compiles one job's campaign up to (and including) its
// golden run, without executing any trials: the expensive, shared half
// of campaign setup. The coordinator uses it to open the Session it
// leases from; workers use it (with checkpoint "") to prime the
// simulators a leased range runs on. Both sides compiling the same spec
// must produce identical golden statistics — that fingerprint is how a
// shard proves it came from the same campaign.
type PrepareFunc func(ctx context.Context, spec JobSpec, checkpoint string) (*fault.Prepared, error)

// FleetExecutor runs each job through the fleet coordinator: Prepare
// compiles the campaign and captures golden state once, the Session is
// registered with the Fleet, and trial ranges are leased to registered
// workers (or executed locally while none are live) until the campaign
// merges. Results are byte-identical to a single-process run of the same
// spec.
type FleetExecutor struct {
	Fleet   *Fleet
	Prepare PrepareFunc
}

// Execute implements Executor.
func (fe *FleetExecutor) Execute(ctx context.Context, spec JobSpec, checkpoint string) (*fault.Result, error) {
	if fe.Fleet == nil || fe.Prepare == nil {
		return nil, MarkPermanent(fmt.Errorf("service: FleetExecutor needs both a Fleet and a Prepare func"))
	}
	p, err := fe.Prepare(ctx, spec, checkpoint)
	if err != nil {
		return nil, err
	}
	sess, err := p.Open(ctx)
	if err != nil {
		return nil, err
	}
	return fe.Fleet.Run(ctx, spec, sess)
}
