package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	turnpike "repro"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// fakeClock is the deterministic time source behind FleetConfig.Now: the
// lease-expiry and heartbeat-loss edges are exact-instant comparisons,
// so the tests advance time by hand and call Tick directly.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// fleetCampaignConfig is the one campaign definition shared by a test's
// session, its worker-side shards, and its single-node reference — the
// byte-identity comparisons only mean something if all three agree.
func fleetCampaignConfig(trials, every int, ckpt string) turnpike.FaultCampaignConfig {
	return turnpike.FaultCampaignConfig{
		Trials: trials, Seed: 5, ScalePct: 4, Workers: 2,
		FailureBudget: -1, Checkpoint: ckpt, CheckpointEvery: every,
	}
}

// fleetSession opens a distributed session over the shared campaign.
func fleetSession(t *testing.T, trials, every, lease int, ckpt string) (*fault.Session, JobSpec) {
	t.Helper()
	p, err := turnpike.PrepareFaultCampaign(context.Background(), "gcc", turnpike.Turnpike,
		fleetCampaignConfig(trials, every, ckpt))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := p.Open(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Bench: "gcc", Trials: trials, Seed: 5, ScalePct: 4, Workers: 2,
		Lease: lease, FailureBudget: -1, CheckpointEvery: every}
	return sess, spec
}

// fleetReference runs the identical campaign uninterrupted on one node.
func fleetReference(t *testing.T, trials int) *fault.Result {
	t.Helper()
	res, err := turnpike.InjectFaults("gcc", turnpike.Turnpike, fleetCampaignConfig(trials, 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runShard executes one range on the session's own simulators — the
// stand-in for a remote worker's execution (the engines are
// deterministic, so the bytes are the same either way).
func runShard(t *testing.T, sess *fault.Session, lo, hi int) *fault.ShardResult {
	t.Helper()
	sh, err := sess.RunRange(context.Background(), lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// addFleetJob registers a session with the coordinator the way
// Fleet.Run's prologue does, without starting the local-fallback loop —
// the tests own every grant and completion.
func addFleetJob(f *Fleet, id string, spec JobSpec, sess *fault.Session) *fleetJob {
	fj := &fleetJob{id: id, spec: spec, sess: sess, kick: make(chan struct{}, 1)}
	f.addJob(fj)
	return fj
}

// TestFleetLeaseExpiryAtCheckpointWatermark: a lease whose range starts
// exactly at the checkpoint watermark expires exactly at its deadline
// boundary (Deadline itself is still live; one instant past is not), the
// watermark is untouched, and the re-granted range finishes the campaign
// byte-identical to a single-node run.
func TestFleetLeaseExpiryAtCheckpointWatermark(t *testing.T) {
	if testing.Short() {
		t.Skip("real campaign fleet test")
	}
	const trials, every = 24, 8
	clk := newFakeClock()
	progress := &pipeline.Progress{}
	f := NewFleet(FleetConfig{
		HeartbeatInterval: time.Hour, // liveness is not under test here
		LeaseTTL:          10 * time.Second,
		Progress:          progress,
		Now:               clk.Now,
	})
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt.json")
	sess, spec := fleetSession(t, trials, every, every, ckpt)
	addFleetJob(f, "job-ckpt", spec, sess)

	if _, err := f.Register("w1", ""); err != nil {
		t.Fatal(err)
	}
	g1, err := f.Lease("w1")
	if err != nil || g1 == nil || g1.Lo != 0 || g1.Hi != 8 {
		t.Fatalf("first grant = %+v, %v; want [0,8)", g1, err)
	}
	if fresh, err := f.Complete("w1", g1.LeaseID, runShard(t, sess, 0, 8)); err != nil || fresh != 8 {
		t.Fatalf("complete [0,8): fresh=%d err=%v", fresh, err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after the first cadence: %v", err)
	}
	if got := sess.Completed(); got != every {
		t.Fatalf("watermark = %d, want %d", got, every)
	}

	// The lease under test starts exactly at the watermark.
	g2, err := f.Lease("w1")
	if err != nil || g2 == nil || g2.Lo != every {
		t.Fatalf("watermark grant = %+v, %v; want lo=%d", g2, err, every)
	}

	// Exactly at the deadline: still live (expiry is now.After(Deadline)).
	clk.Advance(10 * time.Second)
	f.Tick()
	if got := progress.LeasesExpired.Load(); got != 0 {
		t.Fatalf("lease expired exactly at its deadline (expired=%d)", got)
	}
	// One instant past: reclaimed, range requeued, watermark untouched.
	clk.Advance(time.Nanosecond)
	f.Tick()
	if got := progress.LeasesExpired.Load(); got != 1 {
		t.Fatalf("leases_expired = %d after deadline passed, want 1", got)
	}
	if got := sess.Completed(); got != every {
		t.Fatalf("watermark moved across an expiry: %d, want %d", got, every)
	}
	var expired *Lease
	for _, l := range f.LeaseRecords() {
		if l.ID == g2.LeaseID {
			expired = &l
			break
		}
	}
	if expired == nil || expired.State != LeaseExpired {
		t.Fatalf("lease %s state = %+v, want expired", g2.LeaseID, expired)
	}

	// The reclaimed range is re-granted first, then the campaign finishes
	// byte-identical to the uninterrupted single-node run.
	g3, err := f.Lease("w1")
	if err != nil || g3 == nil || g3.Lo != g2.Lo || g3.Hi != g2.Hi {
		t.Fatalf("re-grant = %+v, %v; want [%d,%d)", g3, err, g2.Lo, g2.Hi)
	}
	if _, err := f.Complete("w1", g3.LeaseID, runShard(t, sess, g3.Lo, g3.Hi)); err != nil {
		t.Fatal(err)
	}
	g4, err := f.Lease("w1")
	if err != nil || g4 == nil {
		t.Fatalf("final grant = %+v, %v", g4, err)
	}
	if _, err := f.Complete("w1", g4.LeaseID, runShard(t, sess, g4.Lo, g4.Hi)); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Finish(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fleetReference(t, trials), res) {
		t.Error("result after watermark-boundary expiry diverged from single-node run")
	}
}

// TestFleetWorkStealingDuplicateCompletion: a straggler's lease is
// duplicated after StealAfter, the thief's shard wins, and the loser's
// late shard is cross-validated — an identical one is benign, a
// contradicting one quarantines the submitter, revokes the range, and
// re-runs it; the final result is still byte-identical to a single-node
// run.
func TestFleetWorkStealingDuplicateCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("real campaign fleet test")
	}
	const trials = 32
	clk := newFakeClock()
	progress := &pipeline.Progress{}
	f := NewFleet(FleetConfig{
		HeartbeatInterval: time.Hour,
		LeaseTTL:          time.Hour, // only stealing moves work in this test
		StealAfter:        5 * time.Second,
		Progress:          progress,
		Now:               clk.Now,
	})
	sess, spec := fleetSession(t, trials, 8, 16, "")
	addFleetJob(f, "job-steal", spec, sess)
	for _, id := range []string{"w1", "w2"} {
		if _, err := f.Register(id, ""); err != nil {
			t.Fatal(err)
		}
	}

	// w1 takes [0,16) and straggles; w2 clears [16,32) and then goes
	// hunting.
	g1, err := f.Lease("w1")
	if err != nil || g1 == nil || g1.Lo != 0 || g1.Hi != 16 {
		t.Fatalf("w1 grant = %+v, %v; want [0,16)", g1, err)
	}
	g2, err := f.Lease("w2")
	if err != nil || g2 == nil || g2.Lo != 16 || g2.Hi != 32 {
		t.Fatalf("w2 grant = %+v, %v; want [16,32)", g2, err)
	}
	if _, err := f.Complete("w2", g2.LeaseID, runShard(t, sess, 16, 32)); err != nil {
		t.Fatal(err)
	}
	// Too early to steal: the straggler has until StealAfter.
	if g, err := f.Lease("w2"); err != nil || g != nil {
		t.Fatalf("premature steal: grant=%+v err=%v, want none", g, err)
	}
	clk.Advance(5 * time.Second)
	stolen, err := f.Lease("w2")
	if err != nil || stolen == nil || stolen.Lo != 0 || stolen.Hi != 16 {
		t.Fatalf("steal grant = %+v, %v; want duplicate of [0,16)", stolen, err)
	}
	if got := progress.LeasesStolen.Load(); got != 1 {
		t.Fatalf("leases_stolen = %d, want 1", got)
	}
	var stolenRec *Lease
	for _, l := range f.LeaseRecords() {
		if l.ID == stolen.LeaseID {
			stolenRec = &l
			break
		}
	}
	if stolenRec == nil || !stolenRec.Stolen {
		t.Fatalf("stolen lease record = %+v, want Stolen=true", stolenRec)
	}

	// First complete wins: the thief lands the range; the straggler's
	// grant is superseded.
	good := runShard(t, sess, 0, 16)
	if fresh, err := f.Complete("w2", stolen.LeaseID, good); err != nil || fresh != 16 {
		t.Fatalf("thief completion: fresh=%d err=%v", fresh, err)
	}
	for _, l := range f.LeaseRecords() {
		if l.ID == g1.LeaseID && l.State != LeaseSuperseded {
			t.Fatalf("straggler lease state = %s, want superseded", l.State)
		}
	}

	// The straggler finally reports — with records that contradict the
	// committed ones. Cross-validation quarantines it, revokes the range,
	// and requeues it.
	lying := *good
	lying.Records = append([]fault.TrialRecord(nil), good.Records...)
	lying.Records[2].Stats.Cycles += 7
	lying.Seal()
	if _, err := f.Complete("w1", g1.LeaseID, &lying); !errors.Is(err, fault.ErrShardMismatch) {
		t.Fatalf("contradicting duplicate: err = %v, want ErrShardMismatch", err)
	}
	if err := f.Heartbeat("w1"); !errors.Is(err, ErrWorkerQuarantined) {
		t.Fatalf("quarantined heartbeat: err = %v, want ErrWorkerQuarantined", err)
	}
	if sess.RangeComplete(0, 16) {
		t.Fatal("contradicted range still counted complete after revocation")
	}

	// The surviving worker re-runs the revoked range; the merge is still
	// byte-identical to the uninterrupted run.
	redo, err := f.Lease("w2")
	if err != nil || redo == nil || redo.Lo != 0 || redo.Hi != 16 {
		t.Fatalf("post-revoke grant = %+v, %v; want [0,16)", redo, err)
	}
	if fresh, err := f.Complete("w2", redo.LeaseID, runShard(t, sess, 0, 16)); err != nil || fresh != 16 {
		t.Fatalf("re-run completion: fresh=%d err=%v", fresh, err)
	}
	res, err := sess.Finish(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fleetReference(t, trials), res) {
		t.Error("result after steal + mismatch recovery diverged from single-node run")
	}
}

// TestFleetHeartbeatAfterReclamationIsNoOp: a heartbeat arriving after
// the worker was declared lost revives it without resurrecting its
// reclaimed leases, and a late completion of a reclaimed lease followed
// by the requeued re-grant merges every trial exactly once.
func TestFleetHeartbeatAfterReclamationIsNoOp(t *testing.T) {
	if testing.Short() {
		t.Skip("real campaign fleet test")
	}
	const trials = 16
	clk := newFakeClock()
	progress := &pipeline.Progress{}
	f := NewFleet(FleetConfig{
		HeartbeatInterval: time.Second,
		HeartbeatMisses:   3,
		LeaseTTL:          time.Hour, // only heartbeat loss reclaims here
		Progress:          progress,
		Now:               clk.Now,
	})
	sess, spec := fleetSession(t, trials, 8, 8, "")
	addFleetJob(f, "job-beat", spec, sess)
	if _, err := f.Register("w1", ""); err != nil {
		t.Fatal(err)
	}
	g1, err := f.Lease("w1")
	if err != nil || g1 == nil || g1.Lo != 0 || g1.Hi != 8 {
		t.Fatalf("grant = %+v, %v; want [0,8)", g1, err)
	}

	// Three missed beats: the worker is lost and its lease reclaimed.
	clk.Advance(3*time.Second + time.Millisecond)
	f.Tick()
	st := f.Snapshot()
	if st.WorkersLost != 1 || progress.FleetWorkersLost.Load() != 1 {
		t.Fatalf("workers lost = %d (gauge %d), want 1", st.WorkersLost, progress.FleetWorkersLost.Load())
	}
	if got := progress.LeasesExpired.Load(); got != 1 {
		t.Fatalf("leases_expired = %d, want 1", got)
	}

	// The late heartbeat revives the worker — and nothing else: the
	// reclaimed lease stays reclaimed and the range stays requeued.
	if err := f.Heartbeat("w1"); err != nil {
		t.Fatalf("late heartbeat: %v", err)
	}
	st = f.Snapshot()
	if st.WorkersLive != 1 || st.WorkersLost != 0 {
		t.Fatalf("after revival: live=%d lost=%d, want 1/0", st.WorkersLive, st.WorkersLost)
	}
	for _, l := range f.LeaseRecords() {
		if l.ID == g1.LeaseID && l.State != LeaseExpired {
			t.Fatalf("revival resurrected the reclaimed lease: state = %s", l.State)
		}
	}

	// The revived worker's late shard for the reclaimed lease commits the
	// range (first data wins); the requeued duplicate grant then merges
	// zero fresh trials — no double-merge.
	sh := runShard(t, sess, 0, 8)
	if fresh, err := f.Complete("w1", g1.LeaseID, sh); err != nil || fresh != 8 {
		t.Fatalf("late completion: fresh=%d err=%v", fresh, err)
	}
	dup, err := f.Lease("w1")
	if err != nil || dup == nil || dup.Lo != 0 || dup.Hi != 8 {
		t.Fatalf("requeued grant = %+v, %v; want [0,8)", dup, err)
	}
	if fresh, err := f.Complete("w1", dup.LeaseID, sh); err != nil || fresh != 0 {
		t.Fatalf("requeued duplicate: fresh=%d err=%v, want 0 <nil>", fresh, err)
	}

	rest, err := f.Lease("w1")
	if err != nil || rest == nil || rest.Lo != 8 || rest.Hi != 16 {
		t.Fatalf("final grant = %+v, %v; want [8,16)", rest, err)
	}
	if _, err := f.Complete("w1", rest.LeaseID, runShard(t, sess, 8, 16)); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Finish(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedTrials != trials {
		t.Fatalf("completed %d/%d trials", res.CompletedTrials, trials)
	}
	if !reflect.DeepEqual(fleetReference(t, trials), res) {
		t.Error("result after late-heartbeat recovery diverged from single-node run")
	}
}

// TestReadyzReportsFleetHealth: /readyz stays 200 but reports a degraded
// reason and the fleet block once a registered worker is lost.
func TestReadyzReportsFleetHealth(t *testing.T) {
	clk := newFakeClock()
	fleet := NewFleet(FleetConfig{
		HeartbeatInterval: time.Second,
		HeartbeatMisses:   2,
		Now:               clk.Now,
	})
	s := newTestService(t, Config{Fleet: fleet})
	defer s.Shutdown(context.Background())
	srv := obs.NewServer(obs.ServerConfig{})
	s.Mount(srv)
	h := srv.Handler()

	type readyReply struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
		Fleet  *struct {
			WorkersLive int  `json:"workers_live"`
			WorkersLost int  `json:"workers_lost"`
			Degraded    bool `json:"degraded"`
		} `json:"fleet"`
	}
	readyz := func() (int, readyReply) {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
		var rep readyReply
		if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
			t.Fatalf("readyz body: %v", err)
		}
		return rr.Code, rep
	}

	if _, err := fleet.Register("w1", "10.0.0.2:9"); err != nil {
		t.Fatal(err)
	}
	code, rep := readyz()
	if code != http.StatusOK || !rep.Ready || rep.Reason != "" {
		t.Fatalf("healthy fleet: code=%d rep=%+v", code, rep)
	}
	if rep.Fleet == nil || rep.Fleet.WorkersLive != 1 || rep.Fleet.Degraded {
		t.Fatalf("healthy fleet block = %+v", rep.Fleet)
	}

	clk.Advance(2*time.Second + time.Millisecond)
	fleet.Tick()
	code, rep = readyz()
	if code != http.StatusOK || !rep.Ready {
		t.Fatalf("degraded coordinator must stay ready: code=%d rep=%+v", code, rep)
	}
	if !strings.Contains(rep.Reason, "degraded") {
		t.Fatalf("reason = %q, want a degraded report", rep.Reason)
	}
	if rep.Fleet == nil || rep.Fleet.WorkersLost != 1 || !rep.Fleet.Degraded {
		t.Fatalf("degraded fleet block = %+v", rep.Fleet)
	}
}

// TestSubmitLeaseValidation: a lease wider than the campaign is rejected
// at validation (HTTP 400), not silently clamped; lease == trials is the
// widest legal value.
func TestSubmitLeaseValidation(t *testing.T) {
	s := newTestService(t, Config{})
	defer s.Shutdown(context.Background())
	if _, err := s.Submit(JobSpec{Bench: "gcc", Trials: 10, Lease: -1}); err == nil {
		t.Error("negative lease accepted")
	}
	if _, err := s.Submit(JobSpec{Bench: "gcc", Trials: 10, Lease: 11}); err == nil {
		t.Error("lease wider than the campaign accepted")
	}
	if _, err := s.Submit(JobSpec{Bench: "gcc", Trials: 10, Lease: 10}); err != nil {
		t.Errorf("lease == trials rejected: %v", err)
	}

	srv := obs.NewServer(obs.ServerConfig{})
	s.Mount(srv)
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("POST", "/jobs",
		strings.NewReader(`{"bench":"gcc","trials":10,"lease":20}`)))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("oversized lease over HTTP: %d, want 400", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "exceeds") {
		t.Fatalf("400 body does not explain the clamp rejection: %s", rr.Body.String())
	}
}
