package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/artifact"
	"repro/internal/obs/olog"
)

// The program front door, registered by Mount when Config.Programs is
// set:
//
//	POST /programs                submit IR text; 201 + ProgramResponse,
//	                              200 when the program was already stored
//	                              (cached, zero compiles), 401 without a
//	                              key, 413 over the body cap, 422 for IR
//	                              that fails the admission envelope, 429
//	                              + Retry-After over the rate limit or
//	                              stored-program quota
//	GET  /programs                every stored program + cache counters
//	GET  /programs/{fp}           one program's metadata
//	GET  /programs/{fp}/source    the canonical IR text (what fleet
//	                              workers compile to serve campaigns)
//
// The submission body is raw IR text by default; Content-Type
// application/json switches to a {"source": "..."} wrapper for clients
// that prefer JSON end to end.

// ProgramSubmitRequest is the optional JSON submission wrapper.
type ProgramSubmitRequest struct {
	Source string `json:"source"`
}

// ProgramResponse answers a submission: the stored metadata, whether it
// was served from the store without compiling, the compiled schemes, the
// workload string to paste into a job spec, and the artifact-cache
// counters (the single-flight proof surface).
type ProgramResponse struct {
	*Program
	Cached   bool           `json:"cached"`
	Schemes  []string       `json:"schemes"`
	Workload string         `json:"workload"`
	Cache    artifact.Stats `json:"cache"`
}

func (s *Service) handleProgramSubmit(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	tid := olog.FromContext(ctx).TenantID
	if err := s.cfg.Tenants.Allow(tid); err != nil {
		s.count("service.rejected_ratelimit")
		s.writeTenantError(w, err)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	source := string(body)
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var req ProgramSubmitRequest
		if err := json.Unmarshal(body, &req); err != nil || req.Source == "" {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("service: JSON submissions need a non-empty \"source\" field"))
			return
		}
		source = req.Source
	}

	var budget uint64
	if t, ok := s.cfg.Tenants.ByID(tid); ok {
		budget = t.Quotas.StepBudget
	}
	f, steps, err := s.cfg.Programs.Validate(source, budget)
	if err != nil {
		s.count("service.programs_rejected")
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}

	// Charge the stored-program quota only for genuinely new programs:
	// a resubmission is a cache hit and costs nothing. The charge
	// happens before Put so a tenant at quota cannot trigger compiles;
	// if Put then reports the program already existed (a concurrent
	// identical submission won the race) the charge is rolled back.
	charged := false
	if _, ok := s.cfg.Programs.Get(artifact.Fingerprint(f)); !ok {
		if err := s.cfg.Tenants.AcquireProgram(tid); err != nil {
			s.count("service.rejected_quota")
			s.writeTenantError(w, err)
			return
		}
		charged = true
	}
	meta, entry, cached, err := s.cfg.Programs.Put(ctx, tid, source, f, steps)
	if err != nil {
		if charged {
			s.cfg.Tenants.ReleaseProgram(tid)
		}
		s.count("service.programs_rejected")
		status := http.StatusUnprocessableEntity
		if errors.Is(err, errProgramStorage) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	if cached && charged {
		s.cfg.Tenants.ReleaseProgram(tid)
	}
	status := http.StatusCreated
	if cached {
		status = http.StatusOK
	} else {
		s.count("service.programs_accepted")
		s.log.InfoContext(ctx, "program submitted",
			"fingerprint", meta.Fingerprint, "name", meta.Name,
			"blocks", meta.Blocks, "instrs", meta.Instrs, "steps", meta.Steps)
	}
	writeJSON(w, status, ProgramResponse{
		Program:  meta,
		Cached:   cached,
		Schemes:  schemeNames(entry),
		Workload: ProgramBenchPrefix + meta.Fingerprint,
		Cache:    s.cfg.Programs.CacheStats(),
	})
}

func (s *Service) handlePrograms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Programs []*Program     `json:"programs"`
		Cache    artifact.Stats `json:"cache"`
	}{Programs: s.cfg.Programs.List(), Cache: s.cfg.Programs.CacheStats()})
}

func (s *Service) handleProgram(w http.ResponseWriter, r *http.Request) {
	m, ok := s.cfg.Programs.Get(r.PathValue("fp"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrUnknownProgram)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Service) handleProgramSource(w http.ResponseWriter, r *http.Request) {
	src, err := s.cfg.Programs.Source(r.PathValue("fp"))
	if err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, ErrUnknownProgram) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, src) //nolint:errcheck — client gone is not actionable
}

// schemeNames lists an entry's compiled schemes in build order.
func schemeNames(e *artifact.Entry) []string {
	if e == nil {
		return nil
	}
	out := make([]string, 0, len(e.Schemes))
	for _, name := range artifact.SchemeNames {
		if _, ok := e.Schemes[name]; ok {
			out = append(out, name)
		}
	}
	return out
}
