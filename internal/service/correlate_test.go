package service_test

// End-to-end proof of the correlation acceptance criterion: one HTTP
// submission's request ID must surface, verbatim, in (1) the access-log
// line for the POST, (2) the job's flight-recorder timeline served at
// /jobs/{id}/events, and (3) the campaign engine's per-trial log lines —
// the full chain request → job → shard → trial.

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	turnpike "repro"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/service"
)

// corrBuffer is a goroutine-safe log sink shared by the HTTP handlers,
// the service workers, and the campaign's trial workers.
type corrBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *corrBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *corrBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

func TestRequestIDCorrelatesAccessLogEventsAndCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("real campaign e2e")
	}
	const reqID = "corr-e2e-0001"

	var sink corrBuffer
	rec := olog.NewRecorder(4096)
	// One logger, two legs: JSON lines to the buffer (the "terminal"),
	// everything ≥Debug into the flight recorder — the production shape.
	logger := olog.Attach(
		olog.NewHandler(&sink, olog.Options{Level: slog.LevelDebug}),
		rec.Handler(slog.LevelDebug),
	)

	runner := func(ctx context.Context, spec service.JobSpec, checkpoint string) (*fault.Result, error) {
		return turnpike.InjectFaultsContext(ctx, spec.Bench, turnpike.Turnpike, turnpike.FaultCampaignConfig{
			Trials:          spec.Trials,
			Seed:            spec.Seed,
			ScalePct:        spec.ScalePct,
			Workers:         spec.Workers,
			FailureBudget:   spec.FailureBudget,
			Checkpoint:      checkpoint,
			CheckpointEvery: spec.CheckpointEvery,
			Logger:          logger,
		})
	}

	reg := obs.NewRegistry()
	svc, err := service.New(service.Config{
		StateDir: t.TempDir(),
		Runner:   runner,
		Logger:   logger,
		Events:   rec,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	defer svc.Shutdown(context.Background())

	srv := obs.NewServer(obs.ServerConfig{Snapshot: reg.Snapshot, Instrument: reg})
	svc.Mount(srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Submit with an explicit request ID; the daemon must echo it.
	body := strings.NewReader(`{"bench":"gcc","trials":24,"seed":3,"scale_pct":4,"workers":2,"failure_budget":-1}`)
	req, _ := http.NewRequest("POST", ts.URL+"/jobs", body)
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Fatalf("response request ID %q, want %q", got, reqID)
	}
	var j service.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if j.RequestID != reqID {
		t.Fatalf("job recorded request ID %q, want %q", j.RequestID, reqID)
	}

	// Wait for completion over HTTP, like an operator would.
	deadline := time.Now().Add(120 * time.Second)
	for {
		r2, err := http.Get(ts.URL + "/jobs/" + j.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur service.Job
		if err := json.NewDecoder(r2.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if cur.State == service.StateDone {
			break
		}
		if cur.State == service.StateFailed || cur.State == service.StateCanceled {
			t.Fatalf("job ended %s: %s", cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", cur.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// (1) Access log: exactly one line for the POST, carrying the ID.
	var accessPost, trialLines, jobDone int
	for _, ln := range sink.Lines() {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, ln)
		}
		switch m["msg"] {
		case "http request":
			if m["method"] == "POST" && m["path"] == "/jobs" {
				accessPost++
				if m["request_id"] != reqID {
					t.Fatalf("access line lost the request ID: %s", ln)
				}
				if m["status"] != float64(http.StatusAccepted) {
					t.Fatalf("access line wrong status: %s", ln)
				}
			}
		case "trial complete":
			if m["request_id"] == reqID && m["job_id"] == j.ID {
				trialLines++
			}
		case "job done":
			if m["request_id"] == reqID && m["job_id"] == j.ID {
				jobDone++
			}
		}
	}
	if accessPost != 1 {
		t.Errorf("POST /jobs access lines: %d, want 1", accessPost)
	}
	if trialLines != 24 {
		t.Errorf("correlated trial lines: %d, want 24", trialLines)
	}
	if jobDone != 1 {
		t.Errorf("correlated job-done lines: %d, want 1", jobDone)
	}

	// (2) Flight recorder timeline over HTTP: same chain, same ID.
	r3, err := http.Get(ts.URL + "/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var evs []olog.Event
	if err := json.NewDecoder(r3.Body).Decode(&evs); err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if len(evs) == 0 {
		t.Fatal("event timeline is empty")
	}
	var evTrials, evCorr int
	for _, e := range evs {
		if e.JobID != j.ID {
			t.Fatalf("timeline leaked another job's event: %+v", e)
		}
		if e.RequestID == reqID {
			evCorr++
		}
		if e.Msg == "trial complete" {
			if e.Trial < 0 || e.Shard < 0 {
				t.Fatalf("trial event missing shard/trial: %+v", e)
			}
			evTrials++
		}
	}
	if evCorr != len(evs) {
		t.Errorf("%d/%d timeline events carry the request ID", evCorr, len(evs))
	}
	if evTrials != 24 {
		t.Errorf("timeline trial events: %d, want 24", evTrials)
	}

	// (3) The RED middleware saw the submit too.
	r4, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(r4.Body)
	r4.Body.Close()
	if !strings.Contains(metrics.String(), "http_requests_post_jobs_total 1") {
		t.Errorf("RED counter for POST /jobs missing:\n%s", metrics.String())
	}
	if !strings.Contains(metrics.String(), "service_queue_wait_us_count 1") {
		t.Errorf("queue-wait histogram missing:\n%s", metrics.String())
	}
}
