package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/pipeline"
)

// The fleet coordinator: the state machine that turns one machine's
// campaign service into the head of a worker fleet. Campaigns still
// arrive as jobs through the bounded queue; the FleetExecutor opens each
// as a fault.Session and registers it here, and the coordinator leases
// contiguous trial ranges to remote campaignd processes running in
// worker mode. Robustness is the whole point:
//
//   - workers register and heartbeat; a worker that misses
//     HeartbeatMisses beats is lost and its active leases are reclaimed
//     (the ranges go back to the grant queue);
//   - leases carry deadlines; an expired lease is reclaimed the same
//     way;
//   - a lease outstanding longer than StealAfter may be work-stolen: a
//     second worker gets a duplicate grant, first complete wins, and the
//     loser's late shard is cross-validated record-for-record against
//     what was committed — a mismatch quarantines the submitter, revokes
//     the range, and re-runs it;
//   - while zero remote workers are live the coordinator executes leases
//     itself, so a fleet of one is just the single-process campaign.
//
// Every committed shard flows through fault.Session.Commit, which
// re-derives each record's injection plan and checkpoints on the
// configured cadence — so kill -9 of any worker (or of the coordinator;
// the job re-runs from its checkpoint next life) still merges to bytes
// identical to a single-node run.
//
// Lock order: Service.mu → Fleet.mu. The Fleet never calls back into
// the Service while holding its own lock; the persistence hook
// (SetOnChange) fires after mu is released.

// Fleet wiring errors the HTTP layer maps to status codes.
var (
	// ErrUnknownWorker rejects requests from worker IDs never registered
	// (or forgotten); the worker should re-register and carry on.
	ErrUnknownWorker = errors.New("service: unknown fleet worker")
	// ErrWorkerQuarantined permanently rejects a worker whose shard
	// results failed validation; the process should exit, not retry.
	ErrWorkerQuarantined = errors.New("service: fleet worker quarantined")
	// ErrUnknownLease rejects completions for lease IDs the coordinator
	// no longer tracks (typically: the job finished or was cancelled).
	// Harmless — the worker drops the shard and polls for new work.
	ErrUnknownLease = errors.New("service: unknown lease")
)

// WorkerState is a registered worker's standing with the coordinator.
type WorkerState string

const (
	// WorkerLive workers heartbeat on schedule and may hold leases.
	WorkerLive WorkerState = "live"
	// WorkerLost workers missed too many heartbeats; their leases were
	// reclaimed. A late heartbeat revives them (the leases stay
	// reclaimed).
	WorkerLost WorkerState = "lost"
	// WorkerQuarantined workers submitted shards that failed validation
	// or contradicted committed records; nothing they send is trusted
	// again.
	WorkerQuarantined WorkerState = "quarantined"
)

// WorkerInfo is one registered worker's status snapshot.
type WorkerInfo struct {
	ID           string      `json:"id"`
	Addr         string      `json:"addr,omitempty"`
	State        WorkerState `json:"state"`
	RegisteredAt time.Time   `json:"registered_at"`
	LastBeat     time.Time   `json:"last_beat"`
	// Trials counts trials this worker completed in accepted shards.
	Trials int `json:"trials"`
	// TrialsPerSec is Trials over the worker's accepting window — the
	// per-worker throughput gauge.
	TrialsPerSec float64 `json:"trials_per_sec"`
}

// LeaseState is a lease's position in its lifecycle.
type LeaseState string

const (
	// LeaseActive leases are outstanding: a worker owes the range.
	LeaseActive LeaseState = "active"
	// LeaseDone leases completed: their shard was accepted (first
	// complete wins).
	LeaseDone LeaseState = "done"
	// LeaseExpired leases were reclaimed — deadline passed, worker lost,
	// worker reported failure, or the shard failed validation. The range
	// went back to the grant queue unless a sibling still covers it.
	LeaseExpired LeaseState = "expired"
	// LeaseSuperseded leases lost a work-stealing race: a duplicate
	// grant's shard was accepted first. A late shard from a superseded
	// lease is still cross-validated, then discarded.
	LeaseSuperseded LeaseState = "superseded"
)

// Lease is one grant of a contiguous trial range to one worker — the
// unit persisted in the jobs.json lease table and listed on /fleet.
type Lease struct {
	ID     string     `json:"id"`
	JobID  string     `json:"job_id"`
	Worker string     `json:"worker"`
	Lo     int        `json:"lo"`
	Hi     int        `json:"hi"`
	State  LeaseState `json:"state"`
	// Stolen marks a duplicate grant issued to outrun a straggler.
	Stolen    bool      `json:"stolen,omitempty"`
	GrantedAt time.Time `json:"granted_at"`
	Deadline  time.Time `json:"deadline"`
}

// LeaseGrant is the wire payload of one granted lease: everything a
// worker needs to execute the range and prove the shard came from the
// same campaign (the golden fingerprint).
type LeaseGrant struct {
	LeaseID      string  `json:"lease_id"`
	JobID        string  `json:"job_id"`
	Spec         JobSpec `json:"spec"`
	Lo           int     `json:"lo"`
	Hi           int     `json:"hi"`
	GoldenCycles uint64  `json:"golden_cycles"`
	GoldenInsts  uint64  `json:"golden_insts"`
	TTLMillis    int64   `json:"ttl_ms"`
}

// FleetConfig parameterizes NewFleet. Zero values get production
// defaults.
type FleetConfig struct {
	// HeartbeatInterval is the cadence workers are told to beat at.
	// Default 2s.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many missed beats mark a worker lost and
	// reclaim its leases. Default 3.
	HeartbeatMisses int
	// LeaseTTL is each grant's deadline; an unreturned lease is
	// reclaimed after it. Default 30s.
	LeaseTTL time.Duration
	// StealAfter is how long a lease may be outstanding before a second
	// worker gets a duplicate grant (first complete wins). Default
	// LeaseTTL/3.
	StealAfter time.Duration
	// PollInterval is the lease-poll cadence workers are told to use
	// while the coordinator has no work for them. Default 250ms.
	PollInterval time.Duration
	// LocalWorkers is the trial parallelism advertised for the
	// coordinator's own local-fallback execution; it only sizes the
	// automatic lease when no remote workers are live. Default
	// GOMAXPROCS-derived by the campaign engine.
	LocalWorkers int
	// Progress, when set, receives the fleet gauges (live.fleet_workers,
	// live.leases_stolen, ...).
	Progress *pipeline.Progress
	// Metrics, when set, receives fleet counters and per-worker
	// throughput gauges.
	Metrics *obs.Registry
	// Logger, when set, receives worker/lease lifecycle records.
	Logger *slog.Logger
	// Now is the test clock hook. Default time.Now.
	Now func() time.Time
}

func (c *FleetConfig) fillDefaults() {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.StealAfter <= 0 {
		c.StealAfter = c.LeaseTTL / 3
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 250 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// fleetJob is one campaign the coordinator is driving: its session, the
// FIFO of grantable ranges, and the wakeup channel its Run loop blocks
// on.
type fleetJob struct {
	id        string
	spec      JobSpec
	sess      *fault.Session
	pending   []fault.TrialRange
	localBusy int           // ranges being executed by the local fallback
	kick      chan struct{} // buffered-1 wakeup for the Run loop
}

func (fj *fleetJob) wake() {
	select {
	case fj.kick <- struct{}{}:
	default:
	}
}

// Fleet is the coordinator's worker/lease state machine. All methods are
// safe for concurrent use.
type Fleet struct {
	cfg FleetConfig
	log *slog.Logger

	mu         sync.Mutex
	workers    map[string]*fleetWorker
	leases     map[string]*Lease
	leaseOrder []string // grant order, for listing and persistence
	jobs       []*fleetJob
	nextWorker int
	nextLease  int

	// onChange is the persistence hook (the Service rewrites jobs.json).
	// Always invoked with no Fleet lock held.
	onChange func()
}

type fleetWorker struct {
	WorkerInfo
	// acceptStart anchors the trials/sec window: the first accepted
	// shard's arrival.
	acceptStart time.Time
}

// NewFleet builds an empty coordinator.
func NewFleet(cfg FleetConfig) *Fleet {
	cfg.fillDefaults()
	f := &Fleet{
		cfg:     cfg,
		workers: map[string]*fleetWorker{},
		leases:  map[string]*Lease{},
	}
	if cfg.Logger != nil {
		f.log = cfg.Logger
	} else {
		f.log = olog.Nop()
	}
	return f
}

// SetOnChange installs the persistence hook invoked (with no fleet lock
// held) after every durable state change: registration, loss,
// quarantine, grant, completion, expiry. The Service wires this to its
// state-file rewrite so the lease table survives a coordinator restart.
func (f *Fleet) SetOnChange(fn func()) {
	f.mu.Lock()
	f.onChange = fn
	f.mu.Unlock()
}

func (f *Fleet) changed() {
	f.mu.Lock()
	fn := f.onChange
	f.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// HeartbeatInterval reports the cadence workers are told to beat at.
func (f *Fleet) HeartbeatInterval() time.Duration { return f.cfg.HeartbeatInterval }

// PollInterval reports the lease-poll cadence workers are told to use.
func (f *Fleet) PollInterval() time.Duration { return f.cfg.PollInterval }

// Register admits a worker (or refreshes a re-registration after a
// coordinator restart — worker IDs are stable across re-registers).
// Quarantined IDs stay quarantined: a broken executor does not launder
// itself by reconnecting.
func (f *Fleet) Register(id, addr string) (WorkerInfo, error) {
	f.mu.Lock()
	now := f.cfg.Now()
	if id == "" {
		f.nextWorker++
		id = fmt.Sprintf("w-%06d", f.nextWorker)
	}
	w, ok := f.workers[id]
	if ok && w.State == WorkerQuarantined {
		info := w.WorkerInfo
		f.mu.Unlock()
		return info, fmt.Errorf("%w: %s", ErrWorkerQuarantined, id)
	}
	if !ok {
		w = &fleetWorker{WorkerInfo: WorkerInfo{ID: id, RegisteredAt: now}}
		f.workers[id] = w
	}
	w.Addr = addr
	w.State = WorkerLive
	w.LastBeat = now
	f.updateGaugesLocked()
	info := w.WorkerInfo
	f.wakeAllLocked()
	f.mu.Unlock()
	f.log.Info("fleet worker registered", "worker", id, "addr", addr)
	f.changed()
	return info, nil
}

// Heartbeat records one worker beat. A lost worker is revived (its
// reclaimed leases stay reclaimed — the heartbeat arrived after the
// reclamation, so reviving must not re-grant anything).
func (f *Fleet) Heartbeat(id string) error {
	f.mu.Lock()
	w, err := f.touchLocked(id)
	f.updateGaugesLocked()
	f.mu.Unlock()
	if err != nil {
		return err
	}
	_ = w
	return nil
}

// touchLocked validates the worker and refreshes its liveness; caller
// holds f.mu.
func (f *Fleet) touchLocked(id string) (*fleetWorker, error) {
	w, ok := f.workers[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownWorker, id)
	}
	if w.State == WorkerQuarantined {
		return nil, fmt.Errorf("%w: %s", ErrWorkerQuarantined, id)
	}
	if w.State == WorkerLost {
		w.State = WorkerLive
		f.log.Info("fleet worker revived by late contact", "worker", id)
	}
	w.LastBeat = f.cfg.Now()
	return w, nil
}

// Lease grants the worker one trial range: the next pending range in
// job order, else a work-stealing duplicate of the oldest straggling
// lease. nil with nil error means no work right now — poll again.
func (f *Fleet) Lease(workerID string) (*LeaseGrant, error) {
	f.mu.Lock()
	w, err := f.touchLocked(workerID)
	if err != nil {
		f.mu.Unlock()
		return nil, err
	}
	now := f.cfg.Now()
	var grant *LeaseGrant
	var stole *Lease
	for _, fj := range f.jobs {
		if len(fj.pending) == 0 || fj.sess.BudgetExhausted() {
			continue
		}
		r := fj.pending[0]
		fj.pending = fj.pending[1:]
		grant = f.grantLocked(fj, w, r, false, now)
		break
	}
	if grant == nil {
		if victim := f.stealCandidateLocked(workerID, now); victim != nil {
			fj := f.jobLocked(victim.JobID)
			if fj != nil {
				grant = f.grantLocked(fj, w, fault.TrialRange{Lo: victim.Lo, Hi: victim.Hi}, true, now)
				stole = victim
			}
		}
	}
	f.updateGaugesLocked()
	f.mu.Unlock()
	if grant != nil {
		if stole != nil {
			f.count("fleet.leases_stolen")
			if f.cfg.Progress != nil {
				f.cfg.Progress.LeasesStolen.Add(1)
			}
			f.log.Info("lease stolen: straggler duplicated",
				"lease", grant.LeaseID, "from_lease", stole.ID, "from_worker", stole.Worker,
				"worker", workerID, "lo", grant.Lo, "hi", grant.Hi)
		} else {
			f.log.Debug("lease granted",
				"lease", grant.LeaseID, "worker", workerID, "job", grant.JobID,
				"lo", grant.Lo, "hi", grant.Hi)
		}
		f.count("fleet.leases_granted")
		f.changed()
	}
	return grant, nil
}

// grantLocked creates the lease record and wire grant; caller holds
// f.mu.
func (f *Fleet) grantLocked(fj *fleetJob, w *fleetWorker, r fault.TrialRange, stolen bool, now time.Time) *LeaseGrant {
	f.nextLease++
	l := &Lease{
		ID:        fmt.Sprintf("lease-%06d", f.nextLease),
		JobID:     fj.id,
		Worker:    w.ID,
		Lo:        r.Lo,
		Hi:        r.Hi,
		State:     LeaseActive,
		Stolen:    stolen,
		GrantedAt: now,
		Deadline:  now.Add(f.cfg.LeaseTTL),
	}
	f.leases[l.ID] = l
	f.leaseOrder = append(f.leaseOrder, l.ID)
	golden := fj.sess.GoldenStats()
	return &LeaseGrant{
		LeaseID:      l.ID,
		JobID:        fj.id,
		Spec:         fj.spec,
		Lo:           r.Lo,
		Hi:           r.Hi,
		GoldenCycles: golden.Cycles,
		GoldenInsts:  golden.Insts,
		TTLMillis:    f.cfg.LeaseTTL.Milliseconds(),
	}
}

// stealCandidateLocked picks the oldest active lease outstanding longer
// than StealAfter, held by a different worker, not already duplicated.
// Caller holds f.mu.
func (f *Fleet) stealCandidateLocked(workerID string, now time.Time) *Lease {
	var victim *Lease
	for _, id := range f.leaseOrder {
		l := f.leases[id]
		if l.State != LeaseActive || l.Worker == workerID || l.Worker == localWorkerID {
			continue
		}
		if now.Sub(l.GrantedAt) < f.cfg.StealAfter {
			continue
		}
		if f.duplicatedLocked(l) {
			continue
		}
		if victim == nil || l.GrantedAt.Before(victim.GrantedAt) {
			victim = l
		}
	}
	return victim
}

// duplicatedLocked reports whether another active lease covers the same
// range of the same job. Caller holds f.mu.
func (f *Fleet) duplicatedLocked(l *Lease) bool {
	for _, id := range f.leaseOrder {
		o := f.leases[id]
		if o != l && o.State == LeaseActive && o.JobID == l.JobID && o.Lo == l.Lo && o.Hi == l.Hi {
			return true
		}
	}
	return false
}

func (f *Fleet) jobLocked(id string) *fleetJob {
	for _, fj := range f.jobs {
		if fj.id == id {
			return fj
		}
	}
	return nil
}

// Complete accepts one worker's shard for one lease. First complete
// wins: a duplicate whose records match the committed ones is
// acknowledged and discarded; a duplicate that contradicts them
// quarantines the submitter, revokes the range, and requeues it. fresh
// is how many trials the shard newly committed.
func (f *Fleet) Complete(workerID, leaseID string, sh *fault.ShardResult) (fresh int, err error) {
	f.mu.Lock()
	w, err := f.touchLocked(workerID)
	if err != nil {
		f.mu.Unlock()
		return 0, err
	}
	l, ok := f.leases[leaseID]
	if !ok || l.Worker != workerID {
		f.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrUnknownLease, leaseID)
	}
	fj := f.jobLocked(l.JobID)
	if fj == nil {
		// The job finished or was cancelled while the shard was in
		// flight; nothing to merge into.
		l.State = LeaseExpired
		f.mu.Unlock()
		f.changed()
		return 0, fmt.Errorf("%w: %s (job %s gone)", ErrUnknownLease, leaseID, l.JobID)
	}
	if sh == nil || sh.Lo != l.Lo || sh.Hi != l.Hi {
		f.quarantineLocked(w, l, fmt.Errorf("shard range does not match lease %s", leaseID))
		f.updateGaugesLocked()
		f.mu.Unlock()
		f.changed()
		return 0, fmt.Errorf("%w: shard range does not match lease %s", fault.ErrShardInvalid, leaseID)
	}
	sess := fj.sess
	f.mu.Unlock()

	// Commit outside the fleet lock: plan re-derivation and checkpoint
	// writes should not stall heartbeats. Session.Commit is itself
	// serialized and deterministic under duplicate races.
	fresh, commitErr := sess.Commit(sh)

	f.mu.Lock()
	switch {
	case errors.Is(commitErr, fault.ErrShardMismatch):
		// Two executions of a deterministic campaign disagreed: trust
		// neither. Quarantine the later submitter, revoke the committed
		// half, and re-run the range.
		f.quarantineLocked(w, l, commitErr)
		f.mu.Unlock()
		if err := sess.Revoke(l.Lo, l.Hi); err != nil {
			f.log.Warn("revoke after shard mismatch failed", "lease", leaseID, "error", err.Error())
		}
		f.mu.Lock()
		f.requeueLocked(fj, l)
		f.updateGaugesLocked()
		f.mu.Unlock()
		f.changed()
		return 0, commitErr
	case commitErr != nil:
		// Validation failure: broken checksum, foreign golden
		// fingerprint, fabricated records. The range was not touched.
		f.quarantineLocked(w, l, commitErr)
		f.requeueLocked(fj, l)
		f.updateGaugesLocked()
		f.mu.Unlock()
		f.changed()
		return 0, commitErr
	}
	l.State = LeaseDone
	w.Trials += fresh
	if fresh > 0 {
		if w.acceptStart.IsZero() {
			w.acceptStart = f.cfg.Now()
		}
		f.count("fleet.shards_accepted")
	} else {
		f.count("fleet.shards_duplicate")
	}
	// The range is settled: supersede any sibling grants still racing.
	for _, id := range f.leaseOrder {
		o := f.leases[id]
		if o.State == LeaseActive && o.JobID == l.JobID && o.Lo == l.Lo && o.Hi == l.Hi {
			o.State = LeaseSuperseded
		}
	}
	fj.wake()
	f.updateGaugesLocked()
	f.mu.Unlock()
	f.log.Debug("shard accepted", "lease", leaseID, "worker", workerID,
		"lo", l.Lo, "hi", l.Hi, "fresh", fresh)
	f.changed()
	return fresh, nil
}

// Fail records a worker's failure report for a lease: the range goes
// back to the grant queue; a permanent failure quarantines the worker
// (the coordinator compiled the same campaign successfully, so a worker
// that cannot is not to be trusted with shards).
func (f *Fleet) Fail(workerID, leaseID string, class Class, msg string) error {
	f.mu.Lock()
	w, err := f.touchLocked(workerID)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	l, ok := f.leases[leaseID]
	if !ok || l.Worker != workerID {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownLease, leaseID)
	}
	fj := f.jobLocked(l.JobID)
	if class == Permanent {
		f.quarantineLocked(w, l, fmt.Errorf("worker-reported permanent failure: %s", msg))
	} else if l.State == LeaseActive {
		l.State = LeaseExpired
		f.log.Warn("lease failed transiently; range requeued",
			"lease", leaseID, "worker", workerID, "error", msg)
	}
	if fj != nil {
		f.requeueLocked(fj, l)
	}
	f.updateGaugesLocked()
	f.mu.Unlock()
	f.changed()
	return nil
}

// quarantineLocked marks the worker untrusted and reclaims every active
// lease it holds. Caller holds f.mu and then requeues via
// requeueLocked/changed as appropriate.
func (f *Fleet) quarantineLocked(w *fleetWorker, cause *Lease, why error) {
	if w.State != WorkerQuarantined {
		w.State = WorkerQuarantined
		f.count("fleet.workers_quarantined")
		f.log.Error("fleet worker quarantined",
			"worker", w.ID, "lease", cause.ID, "error", why.Error())
	}
	for _, id := range f.leaseOrder {
		l := f.leases[id]
		if l.Worker == w.ID && l.State == LeaseActive {
			l.State = LeaseExpired
			if fj := f.jobLocked(l.JobID); fj != nil {
				f.requeueLocked(fj, l)
			}
		}
	}
	if cause.State == LeaseActive {
		cause.State = LeaseExpired
	}
}

// requeueLocked returns a reclaimed lease's range to its job's grant
// queue — unless the range is already complete (a sibling finished it)
// or another active lease still covers it. Caller holds f.mu.
func (f *Fleet) requeueLocked(fj *fleetJob, l *Lease) {
	if fj.sess.RangeComplete(l.Lo, l.Hi) {
		fj.wake()
		return
	}
	for _, id := range f.leaseOrder {
		o := f.leases[id]
		if o != l && o.State == LeaseActive && o.JobID == l.JobID && o.Lo == l.Lo && o.Hi == l.Hi {
			return // still in flight elsewhere
		}
	}
	fj.pending = append([]fault.TrialRange{{Lo: l.Lo, Hi: l.Hi}}, fj.pending...)
	fj.wake()
}

// Tick is the janitor pass: workers that missed their heartbeats are
// lost and their leases reclaimed; leases past their deadlines are
// reclaimed. Run loops drive it on a timer; tests with a fake clock call
// it directly.
func (f *Fleet) Tick() {
	f.mu.Lock()
	now := f.cfg.Now()
	changed := false
	lostAfter := time.Duration(f.cfg.HeartbeatMisses) * f.cfg.HeartbeatInterval
	for _, w := range f.workers {
		if w.State == WorkerLive && now.Sub(w.LastBeat) > lostAfter {
			w.State = WorkerLost
			changed = true
			f.log.Warn("fleet worker lost: missed heartbeats; reclaiming its leases",
				"worker", w.ID, "last_beat", w.LastBeat)
			for _, id := range f.leaseOrder {
				l := f.leases[id]
				if l.Worker == w.ID && l.State == LeaseActive {
					f.expireLocked(l)
				}
			}
		}
	}
	for _, id := range f.leaseOrder {
		l := f.leases[id]
		if l.State == LeaseActive && l.Worker != localWorkerID && now.After(l.Deadline) {
			f.log.Warn("lease expired; range requeued",
				"lease", l.ID, "worker", l.Worker, "lo", l.Lo, "hi", l.Hi)
			f.expireLocked(l)
			changed = true
		}
	}
	f.wakeAllLocked()
	f.updateGaugesLocked()
	f.mu.Unlock()
	if changed {
		f.changed()
	}
}

// expireLocked reclaims one active lease. Caller holds f.mu.
func (f *Fleet) expireLocked(l *Lease) {
	l.State = LeaseExpired
	f.count("fleet.leases_expired")
	if f.cfg.Progress != nil {
		f.cfg.Progress.LeasesExpired.Add(1)
	}
	if fj := f.jobLocked(l.JobID); fj != nil {
		f.requeueLocked(fj, l)
	}
}

func (f *Fleet) wakeAllLocked() {
	for _, fj := range f.jobs {
		fj.wake()
	}
}

// localWorkerID marks leases the coordinator executes itself while no
// remote workers are live. Local leases never expire — the coordinator
// cannot lose itself; a cancelled job context reclaims them instead.
const localWorkerID = "local"

// Run drives one campaign through the fleet until every trial is
// committed, the failure budget trips, or ctx is cancelled — then merges
// and returns the Result exactly as fault.Prepared.Run would have. While
// zero remote workers are live, the coordinator executes pending ranges
// itself on the session's prepared runners, so a workerless fleet
// degrades to the single-process campaign (and a mid-campaign worker
// registration picks up the remaining ranges).
func (f *Fleet) Run(ctx context.Context, spec JobSpec, sess *fault.Session) (*fault.Result, error) {
	jobID := olog.FromContext(ctx).JobID
	fj := &fleetJob{
		id:   jobID,
		spec: spec,
		sess: sess,
		kick: make(chan struct{}, 1),
	}
	f.addJob(fj)
	defer f.dropJob(fj)

	interval := f.cfg.HeartbeatInterval / 2
	if interval > time.Second {
		interval = time.Second
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	for ctx.Err() == nil {
		if f.settled(fj) {
			break
		}
		if r, ok := f.claimLocal(fj); ok {
			sh, err := sess.RunRange(ctx, r.Lo, r.Hi)
			f.finishLocal(fj, r, sh, err)
			continue
		}
		select {
		case <-ctx.Done():
		case <-fj.kick:
		case <-ticker.C:
			f.Tick()
		}
	}
	return sess.Finish(ctx)
}

// addJob registers the campaign and splits its unfinished trials into
// lease-sized grantable ranges.
func (f *Fleet) addJob(fj *fleetJob) {
	pending := fj.sess.Pending()
	f.mu.Lock()
	size := f.leaseSizeLocked(fj.spec, fj.sess.Trials())
	for _, r := range pending {
		for lo := r.Lo; lo < r.Hi; lo += size {
			hi := lo + size
			if hi > r.Hi {
				hi = r.Hi
			}
			fj.pending = append(fj.pending, fault.TrialRange{Lo: lo, Hi: hi})
		}
	}
	f.jobs = append(f.jobs, fj)
	f.updateGaugesLocked()
	f.mu.Unlock()
	f.log.Info("campaign joined the fleet grant queue",
		"job", fj.id, "ranges", len(fj.pending), "lease_size", size)
	f.changed()
}

// leaseSizeLocked resolves the job's lease size: an explicit spec value
// wins; otherwise trials/(executors·4) clamped to [1,64], where the
// executor count is the live remote fleet when one exists, else the
// local trial parallelism — the fleet-aware version of the engine's
// local-only default. Caller holds f.mu.
func (f *Fleet) leaseSizeLocked(spec JobSpec, trials int) int {
	if spec.Lease > 0 {
		return spec.Lease
	}
	execs := f.liveWorkersLocked()
	if execs == 0 {
		execs = f.cfg.LocalWorkers
	}
	if execs <= 0 {
		execs = 1
	}
	size := trials / (execs * 4)
	if size < 1 {
		size = 1
	}
	if size > 64 {
		size = 64
	}
	return size
}

func (f *Fleet) liveWorkersLocked() int {
	n := 0
	for _, w := range f.workers {
		if w.State == WorkerLive {
			n++
		}
	}
	return n
}

// dropJob removes a finished campaign: its pending queue dies with it
// and its outstanding leases are closed (late shards get
// ErrUnknownLease and are dropped by the worker).
func (f *Fleet) dropJob(fj *fleetJob) {
	f.mu.Lock()
	for i, o := range f.jobs {
		if o == fj {
			f.jobs = append(f.jobs[:i], f.jobs[i+1:]...)
			break
		}
	}
	for _, id := range f.leaseOrder {
		l := f.leases[id]
		if l.JobID == fj.id && l.State == LeaseActive {
			l.State = LeaseExpired
		}
	}
	f.pruneLeasesLocked()
	f.updateGaugesLocked()
	f.mu.Unlock()
	f.changed()
}

// pruneLeasesLocked bounds the lease table: settled leases of jobs no
// longer registered are dropped oldest-first beyond a history cap.
// Caller holds f.mu.
func (f *Fleet) pruneLeasesLocked() {
	const keep = 512
	if len(f.leaseOrder) <= keep {
		return
	}
	live := map[string]bool{}
	for _, fj := range f.jobs {
		live[fj.id] = true
	}
	kept := f.leaseOrder[:0]
	drop := len(f.leaseOrder) - keep
	for _, id := range f.leaseOrder {
		l := f.leases[id]
		if drop > 0 && l.State != LeaseActive && !live[l.JobID] {
			delete(f.leases, id)
			drop--
			continue
		}
		kept = append(kept, id)
	}
	f.leaseOrder = kept
}

// settled reports whether the campaign owes no more work: budget
// exhausted, or no pending ranges, no outstanding leases, and no local
// execution in flight. The last case re-derives the session's pending
// set as a self-check — any range lost by bookkeeping is re-split and
// re-queued instead of stalling the campaign.
func (f *Fleet) settled(fj *fleetJob) bool {
	if fj.sess.BudgetExhausted() {
		return true
	}
	f.mu.Lock()
	if len(fj.pending) > 0 || fj.localBusy > 0 {
		f.mu.Unlock()
		return false
	}
	for _, id := range f.leaseOrder {
		l := f.leases[id]
		if l.JobID == fj.id && l.State == LeaseActive {
			f.mu.Unlock()
			return false
		}
	}
	f.mu.Unlock()
	missing := fj.sess.Pending()
	if len(missing) == 0 {
		return true
	}
	f.mu.Lock()
	size := f.leaseSizeLocked(fj.spec, fj.sess.Trials())
	for _, r := range missing {
		for lo := r.Lo; lo < r.Hi; lo += size {
			hi := lo + size
			if hi > r.Hi {
				hi = r.Hi
			}
			fj.pending = append(fj.pending, fault.TrialRange{Lo: lo, Hi: hi})
		}
	}
	f.mu.Unlock()
	f.log.Warn("fleet self-check requeued uncovered ranges", "job", fj.id, "ranges", len(missing))
	return false
}

// claimLocal pops one pending range for local-fallback execution — only
// while zero remote workers are live (a live fleet owns the work; the
// coordinator should not race it).
func (f *Fleet) claimLocal(fj *fleetJob) (fault.TrialRange, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.liveWorkersLocked() > 0 || len(fj.pending) == 0 || fj.sess.BudgetExhausted() {
		return fault.TrialRange{}, false
	}
	r := fj.pending[0]
	fj.pending = fj.pending[1:]
	fj.localBusy++
	now := f.cfg.Now()
	f.nextLease++
	l := &Lease{
		ID:        fmt.Sprintf("lease-%06d", f.nextLease),
		JobID:     fj.id,
		Worker:    localWorkerID,
		Lo:        r.Lo,
		Hi:        r.Hi,
		State:     LeaseActive,
		GrantedAt: now,
		Deadline:  now.Add(f.cfg.LeaseTTL),
	}
	f.leases[l.ID] = l
	f.leaseOrder = append(f.leaseOrder, l.ID)
	f.updateGaugesLocked()
	return r, true
}

// finishLocal commits (or requeues) one locally executed range.
func (f *Fleet) finishLocal(fj *fleetJob, r fault.TrialRange, sh *fault.ShardResult, runErr error) {
	var commitErr error
	fresh := 0
	if runErr == nil {
		fresh, commitErr = fj.sess.Commit(sh)
	}
	f.mu.Lock()
	fj.localBusy--
	var l *Lease
	for _, id := range f.leaseOrder {
		o := f.leases[id]
		if o.Worker == localWorkerID && o.JobID == fj.id && o.Lo == r.Lo && o.Hi == r.Hi && o.State == LeaseActive {
			l = o
			break
		}
	}
	switch {
	case runErr != nil || commitErr != nil:
		if l != nil {
			l.State = LeaseExpired
			f.requeueLocked(fj, l)
		} else {
			fj.pending = append([]fault.TrialRange{r}, fj.pending...)
		}
	default:
		if l != nil {
			l.State = LeaseDone
		}
		_ = fresh
	}
	fj.wake()
	f.updateGaugesLocked()
	f.mu.Unlock()
	if commitErr != nil {
		f.log.Warn("local shard rejected; range requeued",
			"job", fj.id, "lo", r.Lo, "hi", r.Hi, "error", commitErr.Error())
	}
	f.changed()
}

// Status is the /fleet page payload and the /readyz fleet-health input.
type Status struct {
	WorkersLive        int          `json:"workers_live"`
	WorkersLost        int          `json:"workers_lost"`
	WorkersQuarantined int          `json:"workers_quarantined"`
	LeasesActive       int          `json:"leases_active"`
	Workers            []WorkerInfo `json:"workers"`
	Leases             []Lease      `json:"leases"`
}

// Snapshot reports the fleet's current workers and lease table.
func (f *Fleet) Snapshot() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := f.cfg.Now()
	st := Status{Workers: []WorkerInfo{}, Leases: []Lease{}}
	for _, w := range f.workers {
		info := w.WorkerInfo
		if w.Trials > 0 && !w.acceptStart.IsZero() {
			if window := now.Sub(w.acceptStart).Seconds(); window > 0 {
				info.TrialsPerSec = float64(w.Trials) / window
			}
		}
		st.Workers = append(st.Workers, info)
		switch w.State {
		case WorkerLive:
			st.WorkersLive++
		case WorkerLost:
			st.WorkersLost++
		case WorkerQuarantined:
			st.WorkersQuarantined++
		}
	}
	sortWorkers(st.Workers)
	for _, id := range f.leaseOrder {
		l := f.leases[id]
		st.Leases = append(st.Leases, *l)
		if l.State == LeaseActive {
			st.LeasesActive++
		}
	}
	return st
}

func sortWorkers(ws []WorkerInfo) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].ID < ws[j-1].ID; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

// LeaseRecords returns the lease table in grant order — the slice the
// Service persists into jobs.json.
func (f *Fleet) LeaseRecords() []Lease {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Lease, 0, len(f.leaseOrder))
	for _, id := range f.leaseOrder {
		out = append(out, *f.leases[id])
	}
	return out
}

// updateGaugesLocked refreshes the Progress fleet gauges and the
// per-worker throughput gauges. Caller holds f.mu.
func (f *Fleet) updateGaugesLocked() {
	live, lost := 0, 0
	for _, w := range f.workers {
		switch w.State {
		case WorkerLive:
			live++
		case WorkerLost:
			lost++
		}
	}
	active := 0
	for _, id := range f.leaseOrder {
		if f.leases[id].State == LeaseActive {
			active++
		}
	}
	if p := f.cfg.Progress; p != nil {
		p.FleetWorkers.Store(int64(live))
		p.FleetWorkersLost.Store(int64(lost))
		p.LeasesActive.Store(int64(active))
	}
	if m := f.cfg.Metrics; m != nil {
		now := f.cfg.Now()
		for _, w := range f.workers {
			rate := int64(0)
			if w.Trials > 0 && !w.acceptStart.IsZero() {
				if window := now.Sub(w.acceptStart).Seconds(); window > 0 {
					rate = int64(float64(w.Trials) / window * 1000)
				}
			}
			m.Gauge("fleet.worker_trials_per_sec_milli." + w.ID).Set(rate)
		}
	}
}

func (f *Fleet) count(name string) {
	if f.cfg.Metrics != nil {
		f.cfg.Metrics.Counter(name).Inc()
	}
}
