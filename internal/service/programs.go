package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"time"

	"repro/internal/artifact"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/obs/olog"
)

// The program half of the front door: tenants submit IR text, the store
// validates it inside hard resource envelopes (parse limits, an
// interpreter step budget proving the program halts, a compile
// deadline), fingerprints it, compiles it once under every scheme into
// the content-addressed artifact cache, and persists the source so a
// restarted daemon can recompile on demand. Campaign jobs then reference
// the program as the workload "program:<fingerprint>".

// ProgramBenchPrefix marks a JobSpec.Bench that names a submitted
// program by fingerprint instead of a built-in benchmark.
const ProgramBenchPrefix = "program:"

// fingerprintRE is the shape of an artifact fingerprint: 32 lowercase
// hex characters (128 bits of SHA-256).
var fingerprintRE = regexp.MustCompile(`^[0-9a-f]{32}$`)

// ErrUnknownProgram rejects jobs referencing a fingerprint the store
// never accepted (404).
var ErrUnknownProgram = errors.New("service: no such program")

// errProgramStorage marks persistence failures (500, not the client's
// fault) apart from validation failures (422).
var errProgramStorage = errors.New("service: program storage")

// Program is one accepted submission's durable metadata. The compiled
// images live in the artifact cache (recompiled on demand after a
// restart); the source text lives next to programs.json as
// <fingerprint>.ir.
type Program struct {
	Fingerprint string `json:"fingerprint"`
	// Name is the submitted function's name (informational; identity is
	// the fingerprint).
	Name string `json:"name"`
	// TenantID is the submitting tenant, charged for the stored-program
	// quota slot and joined into the correlated log.
	TenantID string `json:"tenant_id,omitempty"`
	// SBSize is the store-buffer size the artifacts are compiled for;
	// campaigns against this program simulate the same.
	SBSize int `json:"sb_size"`
	// Shape of the parsed IR, recorded at admission.
	Blocks      int `json:"blocks"`
	Instrs      int `json:"instrs"`
	VRegs       int `json:"vregs"`
	SourceBytes int `json:"source_bytes"`
	// Steps is how many interpreter steps the validation run took to
	// halt — the program's measured compute cost, always within the
	// tenant's step budget.
	Steps uint64 `json:"steps"`

	SubmittedAt time.Time `json:"submitted_at"`
}

// ProgramStoreConfig parameterizes NewProgramStore.
type ProgramStoreConfig struct {
	// Dir holds programs.json and the <fingerprint>.ir sources
	// (required; created if missing).
	Dir string
	// Cache is the compiled-artifact cache; nil builds a default-sized
	// one.
	Cache *artifact.Cache
	// Limits bounds submitted IR at parse time; zero fields take
	// ir.DefaultParseLimits.
	Limits ir.ParseLimits
	// SBSize is the store-buffer size artifacts are compiled for
	// (default 4).
	SBSize int
	// CompileBudget bounds one submission's compile wall time
	// (default 30s; ≤0 keeps the default — parse limits already bound
	// the work, the deadline is the backstop).
	CompileBudget time.Duration
	// Logger, when set, receives admission/eviction records.
	Logger *slog.Logger
}

// ProgramStore is the submitted-program registry: validated sources on
// disk, compiled artifacts in the cache, metadata in memory and in
// programs.json. Safe for concurrent use.
type ProgramStore struct {
	dir    string
	cache  *artifact.Cache
	limits ir.ParseLimits
	sbSize int
	budget time.Duration
	log    *slog.Logger

	mu    sync.Mutex
	metas map[string]*Program
	order []string // admission order, for listing and persistence
}

// NewProgramStore opens (or creates) the store under cfg.Dir and loads
// the metadata of every previously accepted program. Compiled artifacts
// are not rebuilt here: the first campaign or fetch that needs one
// recompiles it from the persisted source through the cache.
func NewProgramStore(cfg ProgramStoreConfig) (*ProgramStore, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("service: ProgramStoreConfig.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: program dir: %w", err)
	}
	ps := &ProgramStore{
		dir:    cfg.Dir,
		cache:  cfg.Cache,
		limits: cfg.Limits,
		sbSize: cfg.SBSize,
		budget: cfg.CompileBudget,
		log:    cfg.Logger,
		metas:  map[string]*Program{},
	}
	if ps.cache == nil {
		ps.cache = artifact.NewCache(0, nil)
	}
	if ps.limits == (ir.ParseLimits{}) {
		ps.limits = ir.DefaultParseLimits()
	}
	if ps.sbSize <= 0 {
		ps.sbSize = 4
	}
	if ps.budget <= 0 {
		ps.budget = 30 * time.Second
	}
	if ps.log == nil {
		ps.log = olog.Nop()
	}
	if err := ps.load(); err != nil {
		return nil, err
	}
	return ps, nil
}

// SBSize is the store-buffer size artifacts are compiled for.
func (ps *ProgramStore) SBSize() int { return ps.sbSize }

// Limits is the parse envelope applied to submissions.
func (ps *ProgramStore) Limits() ir.ParseLimits { return ps.limits }

// CacheStats snapshots the artifact cache counters (the single-flight
// proof surface: a repeat submission must not move Compiles).
func (ps *ProgramStore) CacheStats() artifact.Stats { return ps.cache.Stats() }

// Validate runs a submission through the full admission envelope:
// source-size/block/instr/vreg parse limits, the structural verifier,
// and an interpreter run under stepBudget proving the program halts on
// its own (submitted programs get no memory seeding — they must
// self-initialize). Returns the parsed function and the measured step
// count. Every failure is the client's (422): ir.ErrProgramTooLarge,
// ir.ErrStepLimit, or a parse/verify error.
func (ps *ProgramStore) Validate(source string, stepBudget uint64) (*ir.Func, uint64, error) {
	f, err := ir.ParseFuncLimits(source, ps.limits)
	if err != nil {
		return nil, 0, err
	}
	if err := f.Verify(); err != nil {
		return nil, 0, err
	}
	if stepBudget == 0 {
		stepBudget = DefaultTenantStepBudget
	}
	it := &ir.Interp{
		Regs:      make([]uint64, f.NumVRegs),
		Mem:       isa.NewMemory(),
		StepLimit: stepBudget,
	}
	if err := it.Run(f); err != nil {
		return nil, it.Executed, err
	}
	return f, it.Executed, nil
}

// DefaultTenantStepBudget is the validation step limit used when no
// tenant quota supplies one (library callers without a registry).
const DefaultTenantStepBudget uint64 = 2_000_000

// Put admits a validated program: fingerprint, compile under every
// scheme (single-flight through the artifact cache, under the compile
// budget), persist source + metadata. cached reports that the program
// was already stored — the caller charged no quota and no compile ran.
// Compile and validation failures are 422-class; persistence failures
// wrap errProgramStorage (500-class).
func (ps *ProgramStore) Put(ctx context.Context, tenantID, source string, f *ir.Func, steps uint64) (meta *Program, entry *artifact.Entry, cached bool, err error) {
	fp := artifact.Fingerprint(f)

	ps.mu.Lock()
	if m, ok := ps.metas[fp]; ok {
		ps.mu.Unlock()
		// Known program: serve the artifact (recompiling through the
		// cache if a restart or eviction dropped it) and report a hit.
		e, err := ps.entryFor(ctx, fp, f)
		return m, e, true, err
	}
	ps.mu.Unlock()

	cctx, cancel := artifact.Deadline(ctx, ps.budget)
	defer cancel()
	entry, _, err = ps.cache.GetOrCompute(fp, func() (*artifact.Entry, error) {
		return artifact.CompileAllContext(cctx, f, ps.sbSize, len(source))
	})
	if err != nil {
		return nil, nil, false, err
	}

	ps.mu.Lock()
	defer ps.mu.Unlock()
	if m, ok := ps.metas[fp]; ok {
		// A concurrent submission of the same program persisted first;
		// this caller's quota charge should be rolled back.
		return m, entry, true, nil
	}
	meta = &Program{
		Fingerprint: fp,
		Name:        f.Name,
		TenantID:    tenantID,
		SBSize:      entry.SBSize,
		Blocks:      entry.Blocks,
		Instrs:      entry.Instrs,
		VRegs:       entry.VRegs,
		SourceBytes: len(source),
		Steps:       steps,
		SubmittedAt: time.Now().UTC(),
	}
	if err := os.WriteFile(ps.sourcePath(fp), []byte(source), 0o644); err != nil {
		return nil, nil, false, fmt.Errorf("%w: source: %v", errProgramStorage, err)
	}
	ps.metas[fp] = meta
	ps.order = append(ps.order, fp)
	if err := ps.persistLocked(); err != nil {
		// Roll the admission back: a program we cannot persist would
		// vanish on restart while its quota charge survived in memory.
		delete(ps.metas, fp)
		ps.order = ps.order[:len(ps.order)-1]
		os.Remove(ps.sourcePath(fp))
		return nil, nil, false, err
	}
	ps.log.Info("program accepted",
		"fingerprint", fp, "name", f.Name, "tenant", tenantID,
		"blocks", meta.Blocks, "instrs", meta.Instrs, "steps", steps)
	return meta, entry, false, nil
}

// Get returns one program's metadata.
func (ps *ProgramStore) Get(fp string) (*Program, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	m, ok := ps.metas[fp]
	return m, ok
}

// List returns every stored program's metadata in admission order.
func (ps *ProgramStore) List() []*Program {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]*Program, 0, len(ps.order))
	for _, fp := range ps.order {
		out = append(out, ps.metas[fp])
	}
	return out
}

// Source returns a stored program's IR text.
func (ps *ProgramStore) Source(fp string) (string, error) {
	ps.mu.Lock()
	_, ok := ps.metas[fp]
	ps.mu.Unlock()
	if !ok {
		return "", ErrUnknownProgram
	}
	b, err := os.ReadFile(ps.sourcePath(fp))
	if err != nil {
		return "", fmt.Errorf("%w: source: %v", errProgramStorage, err)
	}
	return string(b), nil
}

// Entry returns a program's compiled artifact, recompiling from the
// persisted source (single-flight, under the compile budget) when a
// restart or cache eviction dropped it.
func (ps *ProgramStore) Entry(ctx context.Context, fp string) (*artifact.Entry, error) {
	ps.mu.Lock()
	_, ok := ps.metas[fp]
	ps.mu.Unlock()
	if !ok {
		return nil, ErrUnknownProgram
	}
	return ps.entryFor(ctx, fp, nil)
}

// entryFor serves fp from the cache, rebuilding from f (or the
// persisted source when f is nil). It takes no lock —
// the cache has its own, and holding ps.mu across a compile would
// serialize every store read behind it.
func (ps *ProgramStore) entryFor(ctx context.Context, fp string, f *ir.Func) (*artifact.Entry, error) {
	cctx, cancel := artifact.Deadline(ctx, ps.budget)
	defer cancel()
	entry, _, err := ps.cache.GetOrCompute(fp, func() (*artifact.Entry, error) {
		ff := f
		if ff == nil {
			src, err := os.ReadFile(ps.sourcePath(fp))
			if err != nil {
				return nil, fmt.Errorf("%w: source: %v", errProgramStorage, err)
			}
			ff, err = ir.ParseFuncLimits(string(src), ps.limits)
			if err != nil {
				return nil, fmt.Errorf("service: stored program %s no longer parses: %w", fp, err)
			}
			return artifact.CompileAllContext(cctx, ff, ps.sbSize, len(src))
		}
		return artifact.CompileAllContext(cctx, ff, ps.sbSize, 0)
	})
	return entry, err
}

func (ps *ProgramStore) sourcePath(fp string) string {
	return filepath.Join(ps.dir, fp+".ir")
}

func (ps *ProgramStore) metaPath() string {
	return filepath.Join(ps.dir, "programs.json")
}

// programsFile is the on-disk layout of programs.json.
type programsFile struct {
	Version  int        `json:"version"`
	Programs []*Program `json:"programs"`
}

// persistLocked rewrites programs.json; caller holds ps.mu.
func (ps *ProgramStore) persistLocked() error {
	pf := programsFile{Version: 1}
	for _, fp := range ps.order {
		pf.Programs = append(pf.Programs, ps.metas[fp])
	}
	err := obs.WriteFileAtomic(ps.metaPath(), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(pf)
	})
	if err != nil {
		return fmt.Errorf("%w: %v", errProgramStorage, err)
	}
	return nil
}

// load restores metadata from a previous life. Missing file = fresh
// store. Entries whose source file vanished are dropped with a warning
// rather than poisoning every future campaign against them.
func (ps *ProgramStore) load() error {
	b, err := os.ReadFile(ps.metaPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("%w: %v", errProgramStorage, err)
	}
	var pf programsFile
	if err := json.Unmarshal(b, &pf); err != nil {
		return fmt.Errorf("service: %s does not parse: %v", ps.metaPath(), err)
	}
	for _, m := range pf.Programs {
		if m == nil || !fingerprintRE.MatchString(m.Fingerprint) {
			continue
		}
		if _, err := os.Stat(ps.sourcePath(m.Fingerprint)); err != nil {
			ps.log.Warn("stored program has no source file; dropping",
				"fingerprint", m.Fingerprint, "name", m.Name)
			continue
		}
		ps.metas[m.Fingerprint] = m
		ps.order = append(ps.order, m.Fingerprint)
	}
	return nil
}
