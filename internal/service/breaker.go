package service

import "time"

// breaker is a per-workload circuit breaker over *permanent* job
// failures. Transient failures are the retry loop's business; a workload
// that keeps failing permanently (bad benchmark build, impossible
// configuration) gets its submissions rejected fast instead of burning a
// worker slot per attempt.
//
// States: closed (failures counted), open (submissions fail fast until
// the cool-down elapses), half-open (one probe job admitted; success
// closes the breaker, another permanent failure reopens it). Breaker
// state is deliberately in-memory only — a daemon restart starts closed,
// which is the safe direction: the worst case is re-learning a failure.
type breaker struct {
	threshold   int
	cooldown    time.Duration
	consecutive int
	openSince   time.Time
	isOpen      bool
	probing     bool // half-open probe in flight
}

// allow reports whether a new job for this workload may be admitted at
// now, transitioning open → half-open once the cool-down has elapsed.
func (b *breaker) allow(now time.Time) bool {
	if !b.isOpen {
		return true
	}
	if now.Sub(b.openSince) < b.cooldown {
		return false
	}
	if b.probing {
		return false // one probe at a time
	}
	b.probing = true
	return true
}

// retryAfter is how long until the breaker would admit a probe.
func (b *breaker) retryAfter(now time.Time) time.Duration {
	if !b.isOpen {
		return 0
	}
	if d := b.cooldown - now.Sub(b.openSince); d > 0 {
		return d
	}
	return 0
}

// failure records one permanent job failure.
func (b *breaker) failure(now time.Time) {
	b.consecutive++
	b.probing = false
	if b.consecutive >= b.threshold {
		b.isOpen = true
		b.openSince = now
	}
}

// success closes the breaker.
func (b *breaker) success() {
	b.consecutive = 0
	b.isOpen = false
	b.probing = false
}
