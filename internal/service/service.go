package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/olog"
	"repro/internal/obs/span"
	"repro/internal/pipeline"
	"repro/internal/tenant"
)

// Runner executes one campaign job. checkpoint is the absolute path of
// the job's resume file: the runner must thread it into the campaign so
// a cancelled or killed attempt leaves a watermark the next attempt
// resumes from. A cancelled ctx must flush that checkpoint and return
// promptly (fault.CampaignContext does both).
type Runner func(ctx context.Context, spec JobSpec, checkpoint string) (*fault.Result, error)

// Config parameterizes New. Zero values get production defaults.
type Config struct {
	// StateDir holds jobs.json and the per-job campaign checkpoints
	// (required). Created if missing.
	StateDir string
	// Runner executes one job in-process. Exactly one of Runner and
	// Executor is required; a Runner is the single-process Executor.
	Runner Runner
	// Executor is the transport-agnostic execution strategy; set it to a
	// *FleetExecutor to lease each campaign's trial ranges to the worker
	// fleet instead of running them inline. When nil, Runner is used.
	Executor Executor
	// Fleet, when set, is the coordinator state machine whose lease
	// table is persisted alongside the jobs (jobs.json v2), reported by
	// /readyz, and served on /fleet. Mount registers the fleet endpoints
	// only when this is set.
	Fleet *Fleet
	// QueueDepth bounds the waiting-job queue; a full queue rejects
	// submissions with backpressure (HTTP 429 + Retry-After). Default 64.
	QueueDepth int
	// Concurrency is how many jobs run at once. Default 1 — campaigns
	// parallelize internally over their trial workers; raising this
	// multiplies CPU oversubscription, not throughput.
	Concurrency int
	// MaxAttempts caps runs of one job, the first included. Default 3.
	MaxAttempts int
	// BackoffBase and BackoffCap shape the retry schedule: the n-th retry
	// waits BackoffBase·2^(n-1) plus up to 25% jitter, capped at
	// BackoffCap. Defaults 500ms and 30s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// JobDeadline bounds one attempt's wall time; a deadline overrun is a
	// transient failure whose retry resumes from the checkpoint
	// watermark. 0 means no deadline. Default 10m.
	JobDeadline time.Duration
	// BreakerThreshold consecutive permanent failures of one workload
	// open its circuit breaker; submissions for that workload then fail
	// fast until BreakerCooldown elapses (then one probe job is
	// admitted). Defaults 3 and 1m.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// RetryAfter is the backpressure hint returned with 429s. Default 5s.
	RetryAfter time.Duration
	// Progress, when set, receives the live queue-depth, retry, and
	// open-breaker gauges (and is handed to runners via closure if the
	// daemon wires it into campaign configs).
	Progress *pipeline.Progress
	// Metrics, when set, receives service counters (submitted, done,
	// failed, retried, rejected, breaker trips) and the RED latency
	// histograms (queue wait, attempt latency).
	Metrics *obs.Registry
	// Logger, when set, receives the service's structured log: one
	// record per job state transition, breaker/retry events, and the
	// operational warnings, each stamped with the request/job correlation
	// chain. Supersedes Logf as the primary sink.
	Logger *slog.Logger
	// Logf is the legacy printf hook. When Logger is nil, every
	// structured record (Info and up) is rendered "msg key=value ..."
	// through it, so existing callers keep their log lines. Nil discards
	// (unless Logger is set).
	Logf func(format string, args ...any)
	// Events, when set, is the flight recorder whose ring backs the
	// GET /jobs/{id}/events timeline and the on-failure dumps. Wire the
	// same Recorder as a fanout leg of Logger (olog.Attach) so every
	// logged record lands in the ring with its correlation intact.
	Events *olog.Recorder
	// Tenants authenticates API keys and meters per-tenant rate limits
	// and quotas on the HTTP front door. Nil builds an anonymous
	// single-tenant registry (zero-config development mode): everything
	// is admitted under default quotas and logged as tenant "anonymous".
	Tenants *tenant.Registry
	// Programs, when set, is the submitted-program store; Mount then
	// registers the POST /programs front door and SubmitCtx accepts
	// "program:<fingerprint>" workloads.
	Programs *ProgramStore
	// MaxBodyBytes caps every POST request body (413 beyond it).
	// Default 1 MiB.
	MaxBodyBytes int64
	// Spans, when set, is the wall-clock span tracer. The service records
	// the job lifecycle phases (queue wait, attempt, backoff, breaker
	// wait, persist, drain requeue) onto it, threads it through each
	// job's context so the campaign engine's phases nest under the
	// attempt span, and its retention ring backs GET /jobs/{id}/trace and
	// /jobs/{id}/phases. The service owns its shutdown: Shutdown and
	// Abort close the tracer (stopping its flusher goroutine; the ring
	// keeps serving queries).
	Spans *span.Tracer
}

func (c *Config) fillDefaults() error {
	if c.StateDir == "" {
		return fmt.Errorf("service: Config.StateDir is required")
	}
	if c.Runner == nil && c.Executor == nil {
		return fmt.Errorf("service: Config needs a Runner or an Executor")
	}
	if c.Executor == nil {
		c.Executor = c.Runner
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 500 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 30 * time.Second
	}
	if c.JobDeadline == 0 {
		c.JobDeadline = 10 * time.Minute
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 5 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Tenants == nil {
		// tenant.New with no records cannot fail; it builds the
		// anonymous single-tenant registry.
		c.Tenants, _ = tenant.New(nil)
	}
	return nil
}

// Submission rejections the HTTP layer maps to status codes.
var (
	// ErrDraining rejects submissions while the daemon drains for
	// shutdown.
	ErrDraining = errors.New("service: draining; not accepting new jobs")
	// ErrUnknownJob is returned for lookups of IDs the service never
	// issued.
	ErrUnknownJob = errors.New("service: no such job")
)

// QueueFullError is the backpressure rejection: the bounded queue is at
// capacity and the caller should retry after the hint.
type QueueFullError struct {
	Depth      int
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("service: job queue full (%d waiting); retry in %s", e.Depth, e.RetryAfter)
}

// BreakerOpenError fails a submission fast: the workload's recent
// permanent failures opened its circuit breaker.
type BreakerOpenError struct {
	Workload   string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("service: circuit breaker open for %s; retry in %s", e.Workload, e.RetryAfter)
}

// Service is the campaign job service: a bounded queue feeding a worker
// supervisor, with every job transition persisted atomically so a killed
// daemon resumes where it stood.
type Service struct {
	cfg Config
	// log is the resolved structured logger: cfg.Logger, else cfg.Logf
	// through the olog.Logf adapter, else a nop. Never nil.
	log *slog.Logger
	// queueWait and attemptLat are the service's RED histograms (nil
	// without cfg.Metrics): how long jobs sit queued before a worker
	// picks them up, and how long one runner attempt takes.
	queueWait  *obs.Histogram
	attemptLat *obs.Histogram

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	order    []string // submission order, for listing and persistence
	pending  []string // FIFO of queued job IDs
	running  map[string]context.CancelFunc
	timers   map[string]*time.Timer // retrying jobs' backoff timers
	breakers map[string]*breaker
	nextID   int
	draining bool
	aborted  bool // simulated crash: skip all persistence on the way out
	// restoredLeases is the previous life's lease table (active grants
	// downgraded to expired), re-persisted until the fleet produces its
	// own records.
	restoredLeases []Lease

	wg  sync.WaitGroup
	now func() time.Time // test hook
}

// New builds a service over StateDir, restoring any jobs a previous
// daemon life left behind: open jobs re-enter the queue and resume from
// their campaign checkpoints.
func New(cfg Config) (*Service, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("service: state dir: %w", err)
	}
	s := &Service{
		cfg:      cfg,
		jobs:     map[string]*Job{},
		running:  map[string]context.CancelFunc{},
		timers:   map[string]*time.Timer{},
		breakers: map[string]*breaker{},
		nextID:   1,
		now:      time.Now,
	}
	switch {
	case cfg.Logger != nil:
		s.log = cfg.Logger
	case cfg.Logf != nil:
		s.log = olog.Logf(cfg.Logf)
	default:
		s.log = olog.Nop()
	}
	if cfg.Metrics != nil {
		// Microsecond buckets spanning 1µs..~17min: queue waits are
		// milliseconds under light load but reach minutes behind a
		// saturated queue or a long backoff.
		s.queueWait = cfg.Metrics.Histogram("service.queue_wait_us", obs.ExpBuckets(1, 4, 16))
		s.attemptLat = cfg.Metrics.Histogram("service.attempt_latency_us", obs.ExpBuckets(1, 4, 16))
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.loadState(); err != nil {
		return nil, err
	}
	if cfg.Fleet != nil {
		// Fleet state changes (registration, grants, completions,
		// expiries) rewrite jobs.json so the lease table survives a
		// coordinator restart. The hook fires with no fleet lock held;
		// lock order is always Service.mu → Fleet.mu.
		cfg.Fleet.SetOnChange(func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.aborted {
				return
			}
			if err := s.persistLocked(); err != nil {
				s.warn(context.Background(), err)
			}
		})
	}
	restored := 0
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State == StateQueued {
			j.queuedAt = s.now()
			s.pending = append(s.pending, id)
			restored++
			if j.TenantID != "" {
				// The restored job still holds its tenant's concurrent-job
				// slot; re-count it so the release at completion balances.
				cfg.Tenants.RestoreJob(j.TenantID)
			}
		}
	}
	if cfg.Programs != nil {
		for _, m := range cfg.Programs.List() {
			if m.TenantID != "" {
				cfg.Tenants.RestoreProgram(m.TenantID)
			}
		}
	}
	if restored > 0 {
		s.logf("restored %d unfinished job(s) from %s; campaigns resume from their checkpoints", restored, s.statePath())
	}
	s.updateGauges()
	return s, nil
}

// Start launches the worker supervisor. Call once.
func (s *Service) Start() {
	for i := 0; i < s.cfg.Concurrency; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				id, ok := s.pop()
				if !ok {
					return
				}
				s.runJob(id)
			}
		}()
	}
}

// Submit validates, admits, persists, and queues one job with no
// request correlation. Rejections: ErrDraining, *BreakerOpenError (the
// workload is failing permanently), *QueueFullError (backpressure).
func (s *Service) Submit(spec JobSpec) (*Job, error) {
	return s.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit plus correlation: the request ID and tenant ID
// carried by ctx (olog.WithRequestID / olog.WithTenantID — the HTTP
// layer stamps both) are recorded on the job, so the access log, the
// job's lifecycle records, and its campaign's trial lines all join on
// one chain. A tenant-stamped submission holds one of the tenant's
// concurrent-job quota slots until the job reaches a terminal state;
// exhausting the quota rejects with *tenant.QuotaError (429).
func (s *Service) SubmitCtx(ctx context.Context, spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Scheme == "" {
		spec.Scheme = "turnpike"
	}
	if spec.CheckpointEvery == 0 {
		// Tight enough that a drained or killed daemon repeats little
		// work, loose enough that checkpoint writes don't dominate.
		spec.CheckpointEvery = 16
	}
	if spec.IsProgram() {
		if s.cfg.Programs == nil {
			return nil, fmt.Errorf("%w: this service accepts no submitted programs", ErrUnknownProgram)
		}
		m, ok := s.cfg.Programs.Get(spec.ProgramFingerprint())
		if !ok {
			return nil, fmt.Errorf("%w: %s (submit it via POST /programs first)", ErrUnknownProgram, spec.Bench)
		}
		if spec.SBSize != 0 && spec.SBSize != m.SBSize {
			return nil, fmt.Errorf("service: program %s is compiled for sb_size %d, not %d",
				m.Fingerprint, m.SBSize, spec.SBSize)
		}
		spec.SBSize = m.SBSize
	}
	tenantID := olog.FromContext(ctx).TenantID
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	now := s.now()
	b := s.breakerFor(spec.Workload())
	wasOpen := b.isOpen
	if !b.allow(now) {
		s.count("service.rejected_breaker")
		return nil, &BreakerOpenError{Workload: spec.Workload(), RetryAfter: b.retryAfter(now)}
	}
	if wasOpen {
		// This admission is the half-open probe: the breaker held the
		// workload's submissions from openSince until now.
		s.cfg.Spans.Record(ctx, "service", "breaker_wait", b.openSince, now,
			map[string]any{"workload": spec.Workload()})
	}
	if len(s.pending) >= s.cfg.QueueDepth {
		s.count("service.rejected_backpressure")
		return nil, &QueueFullError{Depth: len(s.pending), RetryAfter: s.cfg.RetryAfter}
	}
	if tenantID != "" {
		if err := s.cfg.Tenants.AcquireJob(tenantID); err != nil {
			s.count("service.rejected_quota")
			return nil, err
		}
	}
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.nextID++
	j := &Job{
		ID:          id,
		Spec:        spec,
		State:       StateQueued,
		RequestID:   olog.FromContext(ctx).RequestID,
		TenantID:    tenantID,
		Checkpoint:  id + ".ckpt.json",
		SubmittedAt: now,
		queuedAt:    now,
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.pending = append(s.pending, id)
	s.count("service.jobs_submitted")
	pstart := time.Now()
	if err := s.persistLocked(); err != nil {
		// Roll the admission back: a job we cannot persist is a job we
		// would silently lose on restart.
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		s.pending = s.pending[:len(s.pending)-1]
		if tenantID != "" {
			s.cfg.Tenants.ReleaseJob(tenantID)
		}
		return nil, err
	}
	if s.cfg.Spans.Enabled() {
		s.cfg.Spans.Record(olog.WithJobID(ctx, id), "service", "persist",
			pstart, time.Now(), map[string]any{"at": "submit"})
	}
	s.updateGauges()
	s.cond.Signal()
	s.log.InfoContext(olog.WithJobID(ctx, id), "job submitted",
		"workload", spec.Workload(), "trials", spec.Trials, "seed", spec.Seed,
		"queue_depth", len(s.pending))
	return j.clone(), nil
}

// Job returns a snapshot of one job.
func (s *Service) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j.clone(), nil
}

// Jobs returns snapshots of every job in submission order.
func (s *Service) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].clone())
	}
	return out
}

// Cancel stops a job: queued and retrying jobs are withdrawn, a running
// job's context is cancelled (its campaign flushes a final checkpoint
// and returns). Cancelling a finished job is a no-op.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	switch j.State {
	case StateQueued:
		for i, pid := range s.pending {
			if pid == id {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				break
			}
		}
	case StateRetrying:
		if tm := s.timers[id]; tm != nil {
			tm.Stop()
			delete(s.timers, id)
		}
	case StateRunning:
		if cancel := s.running[id]; cancel != nil {
			cancel()
		}
	default:
		return nil // already finished
	}
	j.State = StateCanceled
	j.FinishedAt = s.now()
	s.releaseQuotaLocked(j)
	s.count("service.jobs_canceled")
	s.updateGauges()
	return s.persistLocked()
}

// Draining reports whether the service has begun shutting down.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Saturated reports whether the queue is at capacity (the /readyz
// not-ready condition besides draining).
func (s *Service) Saturated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending) >= s.cfg.QueueDepth
}

// Shutdown drains the service: no new jobs are admitted or started,
// retry timers are parked (their jobs resume next life), and in-flight
// jobs run to completion until ctx expires — then their contexts are
// cancelled, which flushes each campaign's checkpoint and returns the
// job to the queue for the next daemon life. The final state is
// persisted before returning.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for id, tm := range s.timers {
		// A stopped timer leaves its job in StateRetrying; loadState
		// turns that back into StateQueued next life, which is exactly
		// the retry the backoff was deferring.
		tm.Stop()
		delete(s.timers, id)
	}
	inflight := len(s.running)
	s.cond.Broadcast()
	s.mu.Unlock()
	if inflight > 0 {
		s.logf("draining: waiting for %d in-flight job(s)", inflight)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		n := len(s.running)
		for _, cancel := range s.running {
			cancel()
		}
		s.mu.Unlock()
		if n > 0 {
			s.logf("drain window expired; checkpointing %d in-flight job(s) for the next life", n)
		}
		<-done
	}

	s.mu.Lock()
	err := s.persistLocked()
	s.mu.Unlock()
	// The service owns the tracer's lifecycle: stop its flusher goroutine
	// now that no worker can record. The retention ring survives, so the
	// HTTP layer keeps answering /jobs/{id}/trace for a drained daemon.
	if cErr := s.cfg.Spans.Close(); err == nil {
		err = cErr
	}
	return err
}

// Abort is the simulated crash used by tests and nothing else: every
// in-flight context is cancelled and NO state is persisted on the way
// out, so the disk holds exactly what an uncontrolled daemon death would
// leave — the last atomic writes. Restart recovery must still complete
// every job with byte-identical results.
func (s *Service) Abort() {
	s.mu.Lock()
	s.draining = true
	s.aborted = true
	for id, tm := range s.timers {
		tm.Stop()
		delete(s.timers, id)
	}
	for _, cancel := range s.running {
		cancel()
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	// A crash still must not leak the flusher goroutine inside this
	// process; an uncontrolled daemon death would take it down anyway.
	s.cfg.Spans.Close()
}

// pop blocks until a job is available or the service drains.
func (s *Service) pop() (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for !s.draining && len(s.pending) == 0 {
		s.cond.Wait()
	}
	if s.draining || len(s.pending) == 0 {
		return "", false
	}
	id := s.pending[0]
	s.pending = s.pending[1:]
	s.updateGauges()
	return id, true
}

// runJob executes one attempt of one job and routes the outcome: done,
// retry with backoff, permanent failure (breaker), or — during a drain —
// back to the queue for the next daemon life.
func (s *Service) runJob(id string) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.State != StateQueued {
		// Cancelled (or otherwise resolved) between queue and worker.
		s.mu.Unlock()
		return
	}
	j.State = StateRunning
	j.Attempts++
	j.StartedAt = s.now()
	if s.queueWait != nil && !j.queuedAt.IsZero() {
		s.queueWait.Observe(uint64(j.StartedAt.Sub(j.queuedAt).Microseconds()))
	}
	// jobCtx re-roots the correlation chain recorded at submission: the
	// runner's campaign inherits it, so every trial line a campaign logs
	// joins the submitting request's access-log line on request_id — and
	// the span tracer rides the same context, so the campaign's phases
	// nest under this job's attempt span.
	jobCtx := olog.WithCorr(context.Background(), olog.Corr{
		TenantID: j.TenantID, RequestID: j.RequestID, JobID: id, Shard: -1, Trial: -1,
	})
	jobCtx = span.Into(jobCtx, s.cfg.Spans)
	if !j.queuedAt.IsZero() {
		s.cfg.Spans.Record(jobCtx, "service", "queue_wait", j.queuedAt, j.StartedAt,
			map[string]any{"attempt": j.Attempts})
	}
	runCtx, cancel := context.WithCancel(jobCtx)
	if s.cfg.JobDeadline > 0 {
		runCtx, cancel = context.WithTimeout(jobCtx, s.cfg.JobDeadline)
	}
	s.running[id] = cancel
	ckpt := filepath.Join(s.cfg.StateDir, j.Checkpoint)
	spec := j.Spec
	attempt := j.Attempts
	pstart := time.Now()
	if err := s.persistLocked(); err != nil {
		s.warn(jobCtx, err)
	}
	s.cfg.Spans.Record(jobCtx, "service", "persist", pstart, time.Now(),
		map[string]any{"at": "attempt-start"})
	s.mu.Unlock()
	s.log.InfoContext(jobCtx, "attempt start",
		"attempt", attempt, "workload", spec.Workload(),
		"trials", spec.Trials, "seed", spec.Seed)

	runCtx, attemptSpan := span.Start(runCtx, "service", "attempt")
	attemptSpan.SetArg("attempt", attempt)
	attemptSpan.SetArg("workload", spec.Workload())
	started := time.Now()
	res, err := s.cfg.Executor.Execute(runCtx, spec, ckpt)
	elapsed := time.Since(started)
	attemptSpan.End()
	cancel()
	if s.attemptLat != nil {
		s.attemptLat.Observe(uint64(elapsed.Microseconds()))
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.running, id)
	now := s.now()
	persist := true
	switch {
	case j.State == StateCanceled:
		// Cancel already persisted the terminal state; just tidy up.
		os.Remove(ckpt)
		persist = false
	case err == nil:
		j.State = StateDone
		j.Result = res
		j.Error = ""
		j.FinishedAt = now
		s.releaseQuotaLocked(j)
		b := s.breakerFor(spec.Workload())
		if b.isOpen {
			s.log.InfoContext(jobCtx, "breaker closed", "workload", spec.Workload())
		}
		b.success()
		s.count("service.jobs_done")
		os.Remove(ckpt) // the result is in the state file; the watermark is spent
		s.log.InfoContext(jobCtx, "job done",
			"completed", res.CompletedTrials, "trials", spec.Trials,
			"attempt", attempt, "elapsed_ms", elapsed.Milliseconds())
	case s.draining:
		// The drain cut this attempt short; that is not a failure. The
		// checkpoint holds the watermark — re-queue for the next life.
		j.State = StateQueued
		j.Attempts--
		persist = !s.aborted
		s.cfg.Spans.Record(jobCtx, "service", "drain_requeue", now, now,
			map[string]any{"attempt": attempt})
		s.log.InfoContext(jobCtx, "attempt interrupted by drain; requeued for next life",
			"attempt", attempt)
	default:
		j.Error = err.Error()
		class := Classify(err)
		if class == Transient && j.Attempts < s.cfg.MaxAttempts {
			j.State = StateRetrying
			j.backoffAt = now
			delay := s.backoff(j.Attempts)
			if s.cfg.Progress != nil {
				s.cfg.Progress.Retries.Add(1)
			}
			s.count("service.retries")
			s.log.WarnContext(jobCtx, "attempt failed (transient); retrying",
				"attempt", attempt, "error", err.Error(),
				"retry_in_ms", delay.Round(time.Millisecond).Milliseconds())
			s.timers[id] = time.AfterFunc(delay, func() { s.requeue(id) })
		} else {
			j.State = StateFailed
			j.FinishedAt = now
			s.releaseQuotaLocked(j)
			s.count("service.jobs_failed")
			if class == Permanent {
				b := s.breakerFor(spec.Workload())
				b.failure(now)
				if b.isOpen {
					s.count("service.breaker_trips")
					s.log.ErrorContext(jobCtx, "job failed permanently; breaker open",
						"attempt", attempt, "error", err.Error(), "workload", spec.Workload())
				} else {
					s.log.ErrorContext(jobCtx, "job failed permanently",
						"attempt", attempt, "error", err.Error())
				}
			} else {
				s.log.ErrorContext(jobCtx, "job failed; attempts exhausted",
					"attempts", j.Attempts, "error", err.Error())
			}
			s.dumpEvents(jobCtx, id)
		}
	}
	if persist {
		pstart := time.Now()
		if err := s.persistLocked(); err != nil {
			s.warn(jobCtx, err)
		}
		s.cfg.Spans.Record(jobCtx, "service", "persist", pstart, time.Now(),
			map[string]any{"at": "outcome"})
	}
	s.updateGauges()
}

// dumpEvents writes the flight recorder's timeline for one failed job to
// <StateDir>/<id>.events.jsonl — the post-mortem a bounded ring exists
// for. Best-effort: a dump failure is itself only worth a warning.
func (s *Service) dumpEvents(ctx context.Context, id string) {
	if s.cfg.Events == nil {
		return
	}
	path := filepath.Join(s.cfg.StateDir, id+".events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		s.warn(ctx, fmt.Errorf("service: event dump: %w", err))
		return
	}
	n, err := s.cfg.Events.DumpJob(f, id)
	if cErr := f.Close(); err == nil {
		err = cErr
	}
	if err != nil {
		s.warn(ctx, fmt.Errorf("service: event dump: %w", err))
		return
	}
	s.log.InfoContext(ctx, "flight recorder dumped", "events", n, "path", path)
}

// requeue moves a retrying job back into the queue once its backoff
// elapses.
func (s *Service) requeue(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.timers, id)
	j, ok := s.jobs[id]
	if !ok || j.State != StateRetrying || s.draining {
		return
	}
	j.State = StateQueued
	j.queuedAt = s.now()
	s.pending = append(s.pending, id)
	ctx := olog.WithCorr(context.Background(), olog.Corr{
		TenantID: j.TenantID, RequestID: j.RequestID, JobID: id, Shard: -1, Trial: -1,
	})
	if !j.backoffAt.IsZero() {
		s.cfg.Spans.Record(ctx, "service", "backoff", j.backoffAt, j.queuedAt,
			map[string]any{"attempt": j.Attempts})
		j.backoffAt = time.Time{}
	}
	s.log.InfoContext(ctx, "backoff elapsed; requeued", "attempt", j.Attempts)
	if err := s.persistLocked(); err != nil {
		s.warn(ctx, err)
	}
	s.updateGauges()
	s.cond.Signal()
}

// backoff computes the wait before retry n (n = attempts so far):
// base·2^(n-1) with up to 25% jitter, capped.
func (s *Service) backoff(n int) time.Duration {
	d := s.cfg.BackoffBase
	for i := 1; i < n && d < s.cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffCap {
		d = s.cfg.BackoffCap
	}
	if d > 0 {
		d += time.Duration(rand.Int63n(int64(d)/4 + 1))
	}
	return d
}

// releaseQuotaLocked returns a job's concurrent-job quota slot when it
// reaches a terminal state. Caller holds s.mu; the transition into the
// terminal state and this release happen under one critical section, so
// the slot is returned exactly once.
func (s *Service) releaseQuotaLocked(j *Job) {
	if j.TenantID != "" {
		s.cfg.Tenants.ReleaseJob(j.TenantID)
	}
}

// breakerFor returns (creating if needed) the workload's breaker. Caller
// holds s.mu.
func (s *Service) breakerFor(workload string) *breaker {
	b, ok := s.breakers[workload]
	if !ok {
		b = &breaker{threshold: s.cfg.BreakerThreshold, cooldown: s.cfg.BreakerCooldown}
		s.breakers[workload] = b
	}
	return b
}

// updateGauges refreshes the Progress gauges. Caller holds s.mu.
func (s *Service) updateGauges() {
	if s.cfg.Progress == nil {
		return
	}
	s.cfg.Progress.JobsQueued.Store(int64(len(s.pending)))
	s.cfg.Progress.JobsRunning.Store(int64(len(s.running)))
	open := 0
	for _, b := range s.breakers {
		if b.isOpen {
			open++
		}
	}
	s.cfg.Progress.BreakersOpen.Store(int64(open))
}

// count bumps a service counter when a registry is attached. Caller
// holds s.mu (obs counters are goroutine-safe; the lock is incidental).
func (s *Service) count(name string) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Counter(name).Inc()
	}
}

// logf renders a legacy printf-style line through the structured logger
// at Info. With only cfg.Logf configured the olog.Logf adapter hands the
// rendered text straight back to it, so pre-structured callers see the
// exact lines they always did.
func (s *Service) logf(format string, args ...any) {
	s.log.Info(fmt.Sprintf(format, args...))
}

// warn reports an operational error (persist failure, event-dump
// failure) that the service survives.
func (s *Service) warn(ctx context.Context, err error) {
	s.log.WarnContext(ctx, "warning", "error", err.Error())
}
