package service

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// ChaosTransport is the fleet's adversarial network: an http.RoundTripper
// that injects seeded drops, delays, and duplicate deliveries between a
// WorkerClient and its coordinator. The fault schedule is a pure
// function of the seed (rng.Mix/SplitMix64, the same generator the
// campaigns use), so a chaos run is reproducible: the determinism tests
// prove that campaign results stay byte-identical to a single-node run
// under any seed, and nightly CI fuzzes fresh seeds.
//
// Failure modes:
//
//   - drop: the request errors before reaching the server, as a severed
//     connection would — http.Client wraps it in *url.Error, which
//     Classify calls Transient, exercising every retry path;
//   - delay: up to Delay of added latency, enough to trip lease
//     deadlines and heartbeat misses when the knobs are tightened;
//   - duplicate: the request is delivered twice and the second response
//     returned, exercising the coordinator's first-complete-wins
//     idempotency (duplicate registrations, heartbeats, and shard
//     completions must all be harmless).
type ChaosTransport struct {
	// Base performs the real delivery. Default http.DefaultTransport.
	Base http.RoundTripper
	// Drop and Dup are per-request probabilities in [0,1]; Delay is the
	// added-latency cap (0 disables).
	Drop  float64
	Dup   float64
	Delay time.Duration

	mu  sync.Mutex
	rng *rng.Stream

	drops  atomic.Uint64
	dups   atomic.Uint64
	delays atomic.Uint64
}

// NewChaosTransport seeds a chaos transport over base.
func NewChaosTransport(base http.RoundTripper, seed int64, drop, dup float64, delay time.Duration) *ChaosTransport {
	return &ChaosTransport{Base: base, Drop: drop, Dup: dup, Delay: delay, rng: rng.New(seed)}
}

// Stats reports how many faults the transport has injected.
func (t *ChaosTransport) Stats() (drops, dups, delays uint64) {
	return t.drops.Load(), t.dups.Load(), t.delays.Load()
}

func (t *ChaosTransport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// chaosDroppedError is the injected connection failure. http.Client
// wraps it in *url.Error, so Classify sees it as Transient — exactly
// like a real severed connection.
type chaosDroppedError struct{ seq uint64 }

func (e *chaosDroppedError) Error() string {
	return fmt.Sprintf("chaos: request dropped (injected fault #%d)", e.seq)
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	drop := t.rng.Float64() < t.Drop
	dup := !drop && t.rng.Float64() < t.Dup
	var delay time.Duration
	if t.Delay > 0 {
		delay = time.Duration(t.rng.Int63n(int64(t.Delay) + 1))
	}
	t.mu.Unlock()

	if delay > 0 {
		t.delays.Add(1)
		timer := time.NewTimer(delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if drop {
		return nil, &chaosDroppedError{seq: t.drops.Add(1)}
	}
	if dup && req.GetBody != nil {
		// Deliver the request once ahead of time and discard the
		// response; the "real" delivery below returns the second
		// server-side execution's answer — the duplicate-delivery case
		// an at-least-once network produces.
		if body, err := req.GetBody(); err == nil {
			first := req.Clone(req.Context())
			first.Body = body
			if resp, err := t.base().RoundTrip(first); err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				t.dups.Add(1)
			}
		}
	}
	return t.base().RoundTrip(req)
}
