package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/olog"
)

// logBuffer is a goroutine-safe sink for the structured log under test.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) Lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

// TestAccessLogCoversRejections pins the "one access line per request,
// rejections included" contract: a 429 backpressure rejection and a
// request with no X-Request-ID both produce an access-log line, and the
// generated request ID is echoed on the response.
func TestAccessLogCoversRejections(t *testing.T) {
	var sink logBuffer
	release := make(chan struct{})
	s := newTestService(t, Config{
		QueueDepth: 1,
		Logger:     olog.New(&sink, olog.Options{Level: slog.LevelDebug}),
		Runner: func(ctx context.Context, spec JobSpec, _ string) (*fault.Result, error) {
			<-release
			return instantRunner(ctx, spec, "")
		},
	})
	s.Start()
	defer func() { close(release); s.Shutdown(context.Background()) }()

	srv := obs.NewServer(obs.ServerConfig{})
	s.Mount(srv)
	h := srv.Handler()

	submit := func() *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/jobs", strings.NewReader(`{"bench":"gcc","trials":1}`))
		h.ServeHTTP(rr, req)
		return rr
	}

	// First job occupies the worker, second fills the depth-1 queue,
	// third is rejected with backpressure.
	first := submit()
	if first.Code != http.StatusAccepted {
		t.Fatalf("first submit: %d", first.Code)
	}
	if first.Header().Get("X-Request-ID") == "" {
		t.Fatal("no generated X-Request-ID on response")
	}
	waitState(t, s, jobID(t, first), StateRunning)
	if rr := submit(); rr.Code != http.StatusAccepted {
		t.Fatalf("second submit: %d", rr.Code)
	}
	rejected := submit()
	if rejected.Code != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d, want 429", rejected.Code)
	}
	if rejected.Header().Get("X-Request-ID") == "" {
		t.Fatal("rejection lost its X-Request-ID")
	}

	var accessLines, saw429 int
	for _, ln := range sink.Lines() {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, ln)
		}
		if m["msg"] != "http request" {
			continue
		}
		accessLines++
		if rid, _ := m["request_id"].(string); rid == "" {
			t.Fatalf("access line without request_id: %s", ln)
		}
		if m["status"] == float64(http.StatusTooManyRequests) {
			saw429++
		}
	}
	if accessLines != 3 {
		t.Errorf("access lines: %d, want 3", accessLines)
	}
	if saw429 != 1 {
		t.Errorf("429 access lines: %d, want 1", saw429)
	}
}

// jobID decodes the submitted job's ID out of a 202 response.
func jobID(t *testing.T, rr *httptest.ResponseRecorder) string {
	t.Helper()
	var j Job
	if err := json.Unmarshal(rr.Body.Bytes(), &j); err != nil {
		t.Fatal(err)
	}
	return j.ID
}

// TestFailedJobDumpsFlightRecorder: a permanent failure must leave
// <id>.events.jsonl in the state dir — the ring's post-mortem for that
// job — and /jobs/{id}/events must serve the same timeline.
func TestFailedJobDumpsFlightRecorder(t *testing.T) {
	var sink logBuffer
	rec := olog.NewRecorder(256)
	logger := olog.Attach(
		olog.NewHandler(&sink, olog.Options{Level: slog.LevelDebug}),
		rec.Handler(slog.LevelDebug),
	)
	dir := t.TempDir()
	s := newTestService(t, Config{
		StateDir:    dir,
		MaxAttempts: 1,
		Logger:      logger,
		Events:      rec,
		Runner: func(_ context.Context, _ JobSpec, _ string) (*fault.Result, error) {
			return nil, MarkPermanent(errors.New("benchmark build is broken"))
		},
	})
	s.Start()
	defer s.Shutdown(context.Background())

	j, err := s.Submit(JobSpec{Bench: "gcc", Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, j.ID, StateFailed)

	path := filepath.Join(dir, j.ID+".events.jsonl")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("event dump missing: %v", err)
	}
	var dumped int
	for _, ln := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		var e olog.Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("dump line is not JSON: %v\n%s", err, ln)
		}
		if e.JobID != j.ID {
			t.Fatalf("dump holds another job's event: %s", ln)
		}
		dumped++
	}
	if dumped == 0 {
		t.Fatal("event dump is empty")
	}

	// The served timeline matches the dump's contents.
	srv := obs.NewServer(obs.ServerConfig{})
	s.Mount(srv)
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/jobs/"+j.ID+"/events", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("events route: %d", rr.Code)
	}
	var evs []olog.Event
	if err := json.Unmarshal(rr.Body.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	// The ring keeps accruing after the dump (the dump confirmation
	// itself is job-correlated), so served ⊇ dumped.
	if len(evs) < dumped {
		t.Errorf("served %d events, dumped %d", len(evs), dumped)
	}
}
