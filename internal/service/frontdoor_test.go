package service

// Front-door acceptance tests: the full submit → compile → campaign
// path over HTTP, the shared POST body-cap contract, the tenant
// auth/validation/backpressure status mapping, and the restart
// recompile-on-demand path.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	turnpike "repro"
	"repro/internal/artifact"
	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/tenant"
)

// frontDoorKernel is a self-initializing dot-product-style kernel:
// loads from zeroed memory, accumulates, stores the result. What a
// tenant would actually submit.
const frontDoorKernel = `func dot
b0: -> b1
    movi v0, #0
    movi v1, #0
b1: -> b2 b1
    ld v2, [v1, #0]
    ld v3, [v1, #1024]
    mul v2, v2, v3
    add v0, v0, v2
    add v1, v1, #8
    blt v1, #64
b2:
    st v0, [v1, #4096]
    halt
`

// frontDoorKernelMessy is the same program with scrambled whitespace —
// canonically identical, so it must hit the cache.
const frontDoorKernelMessy = "func dot\n\nb0:   ->  b1\n  movi v0, #0\n\tmovi v1, #0\n" +
	"b1: -> b2 b1\n    ld v2, [v1, #0]\n    ld v3, [v1, #1024]\n    mul v2, v2, v3\n" +
	"    add v0, v0, v2\n    add v1, v1, #8\n    blt v1, #64\nb2:\n    st v0, [v1, #4096]\n    halt\n"

// programRunner mirrors cmd/campaignd's campaignPrepare for in-process
// tests: program workloads resolve through the store and run the real
// campaign engine; built-in benches use the instant stub.
func programRunner(t *testing.T, store *ProgramStore) Runner {
	return func(ctx context.Context, spec JobSpec, checkpoint string) (*fault.Result, error) {
		if !spec.IsProgram() {
			return instantRunner(ctx, spec, checkpoint)
		}
		sc, schemeName := turnpike.Turnpike, "turnpike"
		if spec.Scheme == "turnstile" {
			sc, schemeName = turnpike.Turnstile, "turnstile"
		}
		entry, err := store.Entry(ctx, spec.ProgramFingerprint())
		if err != nil {
			return nil, err
		}
		prog, ok := entry.Schemes[schemeName]
		if !ok {
			return nil, fmt.Errorf("%w: program %s has no %s image", fault.ErrInvalidConfig, entry.Fingerprint, schemeName)
		}
		p, err := turnpike.PrepareCompiledFaultCampaign(ctx, prog, sc, turnpike.FaultCampaignConfig{
			Trials:          spec.Trials,
			Seed:            spec.Seed,
			SBSize:          entry.SBSize,
			WCDL:            spec.WCDL,
			Workers:         spec.Workers,
			FailureBudget:   spec.FailureBudget,
			Checkpoint:      checkpoint,
			CheckpointEvery: spec.CheckpointEvery,
			Warnf:           t.Logf,
		})
		if err != nil {
			return nil, err
		}
		return p.Run(ctx)
	}
}

// doHTTP drives one request through a mounted service handler.
func doHTTP(h http.Handler, method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	rr := httptest.NewRecorder()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	h.ServeHTTP(rr, req)
	return rr
}

// TestFrontDoorSubmitCompileCampaignE2E is the tentpole acceptance
// test: submit IR over HTTP, get it compiled under every scheme inside
// the admission envelope, campaign it via "program:<fingerprint>"
// through the unchanged engine, prove a resubmission is a pure cache
// hit (zero new compiles), and prove worker-count independence of the
// campaign result.
func TestFrontDoorSubmitCompileCampaignE2E(t *testing.T) {
	reg, err := tenant.New([]tenant.Tenant{
		{ID: "acme", Key: "acme-key", Quotas: tenant.Quotas{RatePerSec: -1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewProgramStore(ProgramStoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, Config{Tenants: reg, Programs: store, Runner: programRunner(t, store)})
	s.Start()
	defer s.Shutdown(context.Background())
	srv := obs.NewServer(obs.ServerConfig{})
	s.Mount(srv)
	h := srv.Handler()
	key := map[string]string{"X-API-Key": "acme-key"}

	// Submit: 201, all three schemes compiled, exactly one compile.
	rr := doHTTP(h, "POST", "/programs", frontDoorKernel, key)
	if rr.Code != http.StatusCreated {
		t.Fatalf("submit: %d %s", rr.Code, rr.Body.String())
	}
	var resp ProgramResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	fp := resp.Fingerprint
	if !fingerprintRE.MatchString(fp) {
		t.Fatalf("fingerprint %q is not 32 hex chars", fp)
	}
	if resp.Cached {
		t.Error("first submission reported cached")
	}
	if want := []string{"baseline", "turnstile", "turnpike"}; fmt.Sprint(resp.Schemes) != fmt.Sprint(want) {
		t.Errorf("schemes = %v, want %v", resp.Schemes, want)
	}
	if resp.Workload != "program:"+fp {
		t.Errorf("workload = %q", resp.Workload)
	}
	if resp.Cache.Compiles != 1 {
		t.Errorf("compiles after first submit = %d, want 1", resp.Cache.Compiles)
	}
	if resp.TenantID != "acme" {
		t.Errorf("program tenant = %q, want acme", resp.TenantID)
	}

	// Resubmit a formatting variant: canonical identity, so 200 + cached
	// with zero new compiles — the single-flight/cache-hit proof.
	rr = doHTTP(h, "POST", "/programs", frontDoorKernelMessy, key)
	if rr.Code != http.StatusOK {
		t.Fatalf("resubmit: %d %s", rr.Code, rr.Body.String())
	}
	var resp2 ProgramResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if !resp2.Cached || resp2.Fingerprint != fp {
		t.Fatalf("resubmit: cached=%v fp=%s, want cached hit of %s", resp2.Cached, resp2.Fingerprint, fp)
	}
	if resp2.Cache.Compiles != 1 {
		t.Errorf("compiles after resubmit = %d, want still 1", resp2.Cache.Compiles)
	}

	// Campaign the program, workers 1 vs 8: byte-identical results.
	campaign := func(workers int) []byte {
		spec := fmt.Sprintf(`{"bench":"program:%s","trials":80,"seed":11,"workers":%d,"failure_budget":-1}`, fp, workers)
		rr := doHTTP(h, "POST", "/jobs", spec, key)
		if rr.Code != http.StatusAccepted {
			t.Fatalf("job submit (workers=%d): %d %s", workers, rr.Code, rr.Body.String())
		}
		var j Job
		if err := json.Unmarshal(rr.Body.Bytes(), &j); err != nil {
			t.Fatal(err)
		}
		if j.TenantID != "acme" {
			t.Errorf("job tenant = %q, want acme", j.TenantID)
		}
		done := waitState(t, s, j.ID, StateDone)
		if done.Result == nil {
			t.Fatal("done job has no result")
		}
		if done.Result.CompletedTrials != 80 {
			t.Errorf("completed trials = %d, want 80", done.Result.CompletedTrials)
		}
		if sdc := done.Result.Outcomes[fault.SDC]; sdc != 0 {
			t.Errorf("workers=%d: %d SDC trials, want 0", workers, sdc)
		}
		b, err := json.Marshal(done.Result)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one := campaign(1)
	eight := campaign(8)
	if string(one) != string(eight) {
		t.Error("campaign results diverge between workers=1 and workers=8")
	}

	// The job quota slots were all returned at completion.
	if jobs, programs := reg.Usage("acme"); jobs != 0 || programs != 1 {
		t.Errorf("usage after campaigns = %d jobs, %d programs; want 0, 1", jobs, programs)
	}
}

// TestFrontDoorAdversarialContainmentZeroSDC proves the paper's
// containment invariant holds for front-door programs too: under an
// imperfect detection mesh (late detections, a dead sensor, bursts),
// a submitted program's campaign yields zero silent corruptions —
// every missed detection lands as a DUE or recovery, never an SDC.
func TestFrontDoorAdversarialContainmentZeroSDC(t *testing.T) {
	store, err := NewProgramStore(ProgramStoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	f, steps, err := store.Validate(frontDoorKernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, entry, cached, err := store.Put(context.Background(), "acme", frontDoorKernel, f, steps)
	if err != nil || cached {
		t.Fatalf("put: cached=%v err=%v", cached, err)
	}
	res, err := runAdversarial(t, entry)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strikes == 0 || res.MissedDetections == 0 {
		t.Fatalf("adversary inert (strikes=%d missed=%d); the invariant was not exercised",
			res.Strikes, res.MissedDetections)
	}
	if sdc := res.Outcomes[fault.SDC]; sdc != 0 {
		t.Fatalf("%d SDC trials under containment, want 0 (outcomes: %v)", sdc, res.Outcomes)
	}
	t.Logf("adversarial outcomes: %v (strikes=%d, missed=%d)", res.Outcomes, res.Strikes, res.MissedDetections)
}

func runAdversarial(t *testing.T, entry *artifact.Entry) (*fault.Result, error) {
	t.Helper()
	p, err := turnpike.PrepareCompiledFaultCampaign(context.Background(),
		entry.Schemes["turnpike"], turnpike.Turnpike, turnpike.FaultCampaignConfig{
			Trials:        200,
			Seed:          23,
			SBSize:        entry.SBSize,
			FailureBudget: -1,
			Adversary: &turnpike.FaultAdversary{
				MissProb:    0.3,
				DeadSensors: 1,
				BurstMax:    2,
			},
		})
	if err != nil {
		return nil, err
	}
	return p.Run(context.Background())
}

// TestPostRoutesBodyCap413 pins the shared POST error contract: every
// POST route — tenant-facing and fleet — rejects a body over
// Config.MaxBodyBytes with 413 and a JSON error, and still accepts a
// small body (whatever its semantic status).
func TestPostRoutesBodyCap413(t *testing.T) {
	store, err := NewProgramStore(ProgramStoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, Config{
		MaxBodyBytes: 256,
		Fleet:        NewFleet(FleetConfig{}),
		Programs:     store,
	})
	defer s.Shutdown(context.Background())
	srv := obs.NewServer(obs.ServerConfig{})
	s.Mount(srv)
	h := srv.Handler()

	// A syntactically open JSON object: the decoder cannot fail on
	// malformed input before the cap trips, so the 413 is unambiguous.
	big := `{"bench":"` + strings.Repeat("a", 4096) + `"}`
	small := `{"bench":"gcc"}`
	routes := []struct {
		path  string
		small string
	}{
		{"/jobs", small},
		{"/programs", frontDoorKernel},
		{"/fleet/workers", `{"id":""}`},
		{"/fleet/heartbeat", `{"worker_id":"w"}`},
		{"/fleet/lease", `{"worker_id":"w"}`},
		{"/fleet/complete", `{"worker_id":"w","lease_id":"l"}`},
	}
	for _, rt := range routes {
		t.Run(rt.path, func(t *testing.T) {
			rr := doHTTP(h, "POST", rt.path, big, nil)
			if rr.Code != http.StatusRequestEntityTooLarge {
				t.Fatalf("oversized body: %d %s, want 413", rr.Code, rr.Body.String())
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("413 body is not a JSON error: %v %s", err, rr.Body.String())
			}
			if !strings.Contains(e.Error, "256") {
				t.Errorf("413 error does not name the limit: %q", e.Error)
			}
			if rr := doHTTP(h, "POST", rt.path, rt.small, nil); rr.Code == http.StatusRequestEntityTooLarge {
				t.Fatalf("small body rejected 413: %s", rr.Body.String())
			}
		})
	}
}

// TestFrontDoorAuthAndValidation pins the rest of the submission status
// contract: 401 without a key once tenants are configured, 422 for IR
// that fails the admission envelope, 400/404 for bad program workload
// references, and the JSON submission wrapper.
func TestFrontDoorAuthAndValidation(t *testing.T) {
	reg, err := tenant.New([]tenant.Tenant{
		{ID: "acme", Key: "k1", Quotas: tenant.Quotas{RatePerSec: -1, StepBudget: 10_000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewProgramStore(ProgramStoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, Config{Tenants: reg, Programs: store})
	defer s.Shutdown(context.Background())
	srv := obs.NewServer(obs.ServerConfig{})
	s.Mount(srv)
	h := srv.Handler()
	key := map[string]string{"X-API-Key": "k1"}

	// No key (tenants configured): 401 on both mutating routes.
	if rr := doHTTP(h, "POST", "/programs", frontDoorKernel, nil); rr.Code != http.StatusUnauthorized {
		t.Errorf("keyless program submit: %d, want 401", rr.Code)
	}
	if rr := doHTTP(h, "POST", "/jobs", `{"bench":"gcc"}`, nil); rr.Code != http.StatusUnauthorized {
		t.Errorf("keyless job submit: %d, want 401", rr.Code)
	}
	if rr := doHTTP(h, "POST", "/programs", frontDoorKernel, map[string]string{"X-API-Key": "wrong"}); rr.Code != http.StatusUnauthorized {
		t.Errorf("wrong key: %d, want 401", rr.Code)
	}

	// Malformed IR: 422.
	if rr := doHTTP(h, "POST", "/programs", "this is not IR", key); rr.Code != http.StatusUnprocessableEntity {
		t.Errorf("malformed IR: %d, want 422", rr.Code)
	}
	// A program that never halts burns its step budget: 422, and the
	// error names the budget failure.
	spin := "func spin\nb0: -> b0\n    movi v0, #1\n    jmp\n"
	rr := doHTTP(h, "POST", "/programs", spin, key)
	if rr.Code != http.StatusUnprocessableEntity {
		t.Errorf("non-halting program: %d, want 422", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "step") {
		t.Errorf("step-budget rejection does not say why: %s", rr.Body.String())
	}

	// JSON wrapper submission.
	wrapped, _ := json.Marshal(ProgramSubmitRequest{Source: frontDoorKernel})
	rr = doHTTP(h, "POST", "/programs", string(wrapped),
		map[string]string{"X-API-Key": "k1", "Content-Type": "application/json"})
	if rr.Code != http.StatusCreated {
		t.Fatalf("JSON-wrapped submit: %d %s", rr.Code, rr.Body.String())
	}
	var resp ProgramResponse
	json.Unmarshal(rr.Body.Bytes(), &resp)
	if rr := doHTTP(h, "POST", "/programs", `{"nope":1}`,
		map[string]string{"X-API-Key": "k1", "Content-Type": "application/json"}); rr.Code != http.StatusBadRequest {
		t.Errorf("JSON wrapper without source: %d, want 400", rr.Code)
	}

	// Program reads: list, meta, source round-trip, unknown 404s.
	if rr := doHTTP(h, "GET", "/programs", "", nil); rr.Code != http.StatusOK ||
		!strings.Contains(rr.Body.String(), resp.Fingerprint) {
		t.Errorf("program list: %d %s", rr.Code, rr.Body.String())
	}
	if rr := doHTTP(h, "GET", "/programs/"+resp.Fingerprint+"/source", "", nil); rr.Code != http.StatusOK ||
		rr.Body.String() != frontDoorKernel {
		t.Errorf("source did not round-trip: %d", rr.Code)
	}
	unknown := strings.Repeat("ab", 16)
	if rr := doHTTP(h, "GET", "/programs/"+unknown, "", nil); rr.Code != http.StatusNotFound {
		t.Errorf("unknown program meta: %d, want 404", rr.Code)
	}

	// Job workload references: malformed fingerprint 400, unknown 404.
	if rr := doHTTP(h, "POST", "/jobs", `{"bench":"program:nope"}`, key); rr.Code != http.StatusBadRequest {
		t.Errorf("malformed program workload: %d, want 400", rr.Code)
	}
	if rr := doHTTP(h, "POST", "/jobs", fmt.Sprintf(`{"bench":"program:%s"}`, unknown), key); rr.Code != http.StatusNotFound {
		t.Errorf("unknown program workload: %d, want 404", rr.Code)
	}
}

// TestFrontDoorRateLimitAndQuotaHTTP is the HTTP half of the isolation
// acceptance proof: one tenant exhausting its token bucket gets 429 +
// Retry-After while a second tenant's submissions sail through, and the
// stored-program / concurrent-job quotas answer 429 without charging
// cache hits.
func TestFrontDoorRateLimitAndQuotaHTTP(t *testing.T) {
	reg, err := tenant.New([]tenant.Tenant{
		{ID: "a", Key: "ka", Quotas: tenant.Quotas{RatePerSec: 1, Burst: 2}},
		{ID: "b", Key: "kb", Quotas: tenant.Quotas{RatePerSec: 1, Burst: 2}},
		{ID: "c", Key: "kc", Quotas: tenant.Quotas{RatePerSec: -1, MaxStoredPrograms: 1}},
		{ID: "d", Key: "kd", Quotas: tenant.Quotas{RatePerSec: -1, MaxConcurrentJobs: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	reg.SetNow(func() time.Time { return now })

	store, err := NewProgramStore(ProgramStoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s := newTestService(t, Config{
		Tenants:  reg,
		Programs: store,
		Runner: func(ctx context.Context, spec JobSpec, _ string) (*fault.Result, error) {
			<-release
			return instantRunner(ctx, spec, "")
		},
	})
	s.Start()
	defer func() { close(release); s.Shutdown(context.Background()) }()
	srv := obs.NewServer(obs.ServerConfig{})
	s.Mount(srv)
	h := srv.Handler()

	submit := func(key, body string) *httptest.ResponseRecorder {
		return doHTTP(h, "POST", "/jobs", body, map[string]string{"X-API-Key": key})
	}

	// Tenant a drains its burst of 2; the third request is rate-limited
	// with a Retry-After a client can honor.
	spec := `{"bench":"gcc","trials":1}`
	for i := 0; i < 2; i++ {
		if rr := submit("ka", spec); rr.Code != http.StatusAccepted {
			t.Fatalf("a submit %d: %d %s", i, rr.Code, rr.Body.String())
		}
	}
	rr := submit("ka", spec)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("a over burst: %d, want 429", rr.Code)
	}
	retry := rr.Header().Get("Retry-After")
	if retry == "" || retry == "0" {
		t.Fatalf("429 without a usable Retry-After (%q)", retry)
	}
	// Tenant b is unaffected while a is limited.
	for i := 0; i < 2; i++ {
		if rr := submit("kb", spec); rr.Code != http.StatusAccepted {
			t.Fatalf("b submit %d while a limited: %d %s", i, rr.Code, rr.Body.String())
		}
	}
	// After the advertised wait, a is admitted again.
	var wait int
	fmt.Sscanf(retry, "%d", &wait)
	now = now.Add(time.Duration(wait) * time.Second)
	if rr := submit("ka", spec); rr.Code != http.StatusAccepted {
		t.Fatalf("a after Retry-After: %d %s", rr.Code, rr.Body.String())
	}

	// Stored-program quota: c keeps one program; a second distinct
	// program 429s, but resubmitting the first is a free cache hit.
	progs := map[string]string{"X-API-Key": "kc"}
	if rr := doHTTP(h, "POST", "/programs", frontDoorKernel, progs); rr.Code != http.StatusCreated {
		t.Fatalf("c first program: %d %s", rr.Code, rr.Body.String())
	}
	other := strings.Replace(frontDoorKernel, "#4096", "#4104", 1)
	rr = doHTTP(h, "POST", "/programs", other, progs)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("c second program: %d, want 429 (quota)", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("quota 429 without Retry-After")
	}
	if rr := doHTTP(h, "POST", "/programs", frontDoorKernel, progs); rr.Code != http.StatusOK {
		t.Fatalf("c resubmit at quota: %d, want 200 cached (hits cost nothing)", rr.Code)
	}
	if _, programs := reg.Usage("c"); programs != 1 {
		t.Errorf("c program usage = %d, want 1", programs)
	}

	// Concurrent-job quota: d holds one running job; the second 429s
	// until the first finishes.
	if rr := submit("kd", spec); rr.Code != http.StatusAccepted {
		t.Fatalf("d first job: %d %s", rr.Code, rr.Body.String())
	}
	if rr := submit("kd", spec); rr.Code != http.StatusTooManyRequests {
		t.Fatalf("d second job: %d, want 429 (concurrent-job quota)", rr.Code)
	}
}

// TestClassifyStepLimitPermanent: a step-limit failure is deterministic
// (the interpreter replays identically), so retrying is pure waste.
func TestClassifyStepLimitPermanent(t *testing.T) {
	err := fmt.Errorf("validating submission: %w", ir.ErrStepLimit)
	if got := Classify(err); got != Permanent {
		t.Fatalf("Classify(ErrStepLimit) = %v, want Permanent", got)
	}
}

// TestProgramStoreRestartRecompile: a restarted store serves the same
// metadata and recompiles artifacts on demand from the persisted
// source, and a restarted service re-counts stored programs against
// their tenants' quotas.
func TestProgramStoreRestartRecompile(t *testing.T) {
	dir := t.TempDir()
	store, err := NewProgramStore(ProgramStoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	f, steps, err := store.Validate(frontDoorKernel, 0)
	if err != nil {
		t.Fatal(err)
	}
	meta, _, _, err := store.Put(context.Background(), "acme", frontDoorKernel, f, steps)
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh store over the same dir with an empty cache.
	store2, err := NewProgramStore(ProgramStoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := store2.List(); len(got) != 1 || got[0].Fingerprint != meta.Fingerprint {
		t.Fatalf("restarted store lists %v", got)
	}
	entry, err := store2.Entry(context.Background(), meta.Fingerprint)
	if err != nil {
		t.Fatalf("recompile on demand: %v", err)
	}
	if entry.Fingerprint != meta.Fingerprint || len(entry.Schemes) != 3 {
		t.Fatalf("recompiled entry = %+v", entry)
	}
	if st := store2.CacheStats(); st.Compiles != 1 {
		t.Errorf("restart compiles = %d, want exactly 1", st.Compiles)
	}
	if _, err := store2.Entry(context.Background(), strings.Repeat("00", 16)); !errors.Is(err, ErrUnknownProgram) {
		t.Errorf("unknown entry: %v, want ErrUnknownProgram", err)
	}

	// Service restore re-counts the stored program against its tenant.
	reg, err := tenant.New([]tenant.Tenant{{ID: "acme", Key: "k"}})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, Config{Tenants: reg, Programs: store2})
	defer s.Shutdown(context.Background())
	if _, programs := reg.Usage("acme"); programs != 1 {
		t.Errorf("restored program usage = %d, want 1", programs)
	}
}
