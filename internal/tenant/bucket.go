package tenant

import (
	"math"
	"time"
)

// bucket is a classic token bucket: tokens refill continuously at rate
// per second up to burst capacity; each take consumes one. All time
// arithmetic goes through the timestamps the registry passes in, so a
// fake clock drives refill deterministically in tests.
type bucket struct {
	rate   float64 // tokens per second
	burst  float64 // capacity
	tokens float64
	last   time.Time
}

func newBucket(rate float64, burst int, now time.Time) *bucket {
	if burst < 1 {
		burst = 1
	}
	return &bucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// take consumes one token if available. When the bucket is empty it
// reports how long until the next token refills (rounded up to a whole
// second, the Retry-After granularity, and never below 1s so a client
// honoring the header cannot busy-loop).
func (b *bucket) take(now time.Time) (ok bool, wait time.Duration) {
	b.refill(now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if b.rate <= 0 {
		// No refill ever: burst-only bucket that has run dry.
		return false, time.Hour
	}
	need := 1 - b.tokens
	wait = time.Duration(math.Ceil(need/b.rate)) * time.Second
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}

func (b *bucket) refill(now time.Time) {
	if !now.After(b.last) {
		return
	}
	dt := now.Sub(b.last).Seconds()
	b.last = now
	b.tokens += dt * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}
