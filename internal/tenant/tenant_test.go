package tenant

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeClock is a hand-cranked clock for deterministic bucket refill.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func testRegistry(t *testing.T, tenants []Tenant) (*Registry, *fakeClock) {
	t.Helper()
	r, err := New(tenants)
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	r.SetNow(clk.now)
	return r, clk
}

// TestRateLimitTenantIsolation is the acceptance proof for the front
// door's rate limiting: tenant A burning through its token bucket gets
// 429-mapped RateLimitErrors with a usable Retry-After, while tenant B —
// its own bucket, its own counters — is completely unaffected.
func TestRateLimitTenantIsolation(t *testing.T) {
	r, clk := testRegistry(t, []Tenant{
		{ID: "a", Key: "key-a", Quotas: Quotas{RatePerSec: 1, Burst: 3}},
		{ID: "b", Key: "key-b", Quotas: Quotas{RatePerSec: 1, Burst: 3}},
	})

	// A drains its burst.
	for i := 0; i < 3; i++ {
		if err := r.Allow("a"); err != nil {
			t.Fatalf("a request %d inside burst rejected: %v", i, err)
		}
	}
	err := r.Allow("a")
	var rle *RateLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("a over burst: got %v, want *RateLimitError", err)
	}
	if rle.Tenant != "a" {
		t.Errorf("RateLimitError.Tenant = %q, want a", rle.Tenant)
	}
	if rle.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %v, want >= 1s so clients cannot busy-loop", rle.RetryAfter)
	}

	// B is untouched by A's exhaustion.
	for i := 0; i < 3; i++ {
		if err := r.Allow("b"); err != nil {
			t.Fatalf("b request %d rejected while a is limited: %v", i, err)
		}
	}

	// After the advertised wait, A's bucket has refilled exactly one token.
	clk.advance(rle.RetryAfter)
	if err := r.Allow("a"); err != nil {
		t.Fatalf("a after waiting Retry-After still rejected: %v", err)
	}
	if err := r.Allow("a"); err == nil {
		t.Fatal("a got two tokens from a one-token refill")
	}
}

func TestRateLimitRefillCapsAtBurst(t *testing.T) {
	r, clk := testRegistry(t, []Tenant{
		{ID: "a", Key: "k", Quotas: Quotas{RatePerSec: 10, Burst: 2}},
	})
	for i := 0; i < 2; i++ {
		if err := r.Allow("a"); err != nil {
			t.Fatal(err)
		}
	}
	// A long idle period must not bank more than the burst.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if err := r.Allow("a"); err != nil {
			t.Fatalf("request %d after refill rejected: %v", i, err)
		}
	}
	if err := r.Allow("a"); err == nil {
		t.Fatal("bucket banked tokens beyond burst")
	}
}

func TestRateUnlimited(t *testing.T) {
	r, _ := testRegistry(t, []Tenant{
		{ID: "a", Key: "k", Quotas: Quotas{RatePerSec: -1}},
	})
	for i := 0; i < 1000; i++ {
		if err := r.Allow("a"); err != nil {
			t.Fatalf("unlimited tenant rejected at request %d: %v", i, err)
		}
	}
}

func TestJobQuotaAcquireReleaseRestore(t *testing.T) {
	r, _ := testRegistry(t, []Tenant{
		{ID: "a", Key: "k", Quotas: Quotas{MaxConcurrentJobs: 2}},
	})
	if err := r.AcquireJob("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.AcquireJob("a"); err != nil {
		t.Fatal(err)
	}
	err := r.AcquireJob("a")
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over job quota: got %v, want *QuotaError", err)
	}
	if qe.Kind != "concurrent jobs" || qe.Used != 2 || qe.Limit != 2 {
		t.Errorf("QuotaError = %+v", qe)
	}
	r.ReleaseJob("a")
	if err := r.AcquireJob("a"); err != nil {
		t.Fatalf("slot not returned by ReleaseJob: %v", err)
	}

	// Restore bypasses the limit (restart re-count must never strand
	// already-admitted work), but the usage still counts.
	r.RestoreJob("a")
	if jobs, _ := r.Usage("a"); jobs != 3 {
		t.Fatalf("usage after restore = %d jobs, want 3 (over the limit of 2)", jobs)
	}
	if err := r.AcquireJob("a"); err == nil {
		t.Fatal("new acquire admitted while restored usage exceeds the limit")
	}
}

func TestProgramQuota(t *testing.T) {
	r, _ := testRegistry(t, []Tenant{
		{ID: "a", Key: "k", Quotas: Quotas{MaxStoredPrograms: 1}},
	})
	if err := r.AcquireProgram("a"); err != nil {
		t.Fatal(err)
	}
	var qe *QuotaError
	if err := r.AcquireProgram("a"); !errors.As(err, &qe) || qe.Kind != "stored programs" {
		t.Fatalf("over program quota: got %v", err)
	}
	r.ReleaseProgram("a")
	if err := r.AcquireProgram("a"); err != nil {
		t.Fatalf("slot not returned by ReleaseProgram: %v", err)
	}
}

func TestAnonymousMode(t *testing.T) {
	r, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Anonymous() {
		t.Fatal("empty registry must be anonymous")
	}
	tn, err := r.Authenticate("")
	if err != nil || tn.ID != AnonymousID {
		t.Fatalf("anonymous auth = %v, %v", tn, err)
	}
	// Any key is accepted in anonymous mode — there is nothing to check.
	if _, err := r.Authenticate("whatever"); err != nil {
		t.Fatalf("anonymous mode rejected a key: %v", err)
	}
	if tn.Quotas != DefaultQuotas() {
		t.Errorf("anonymous quotas = %+v, want defaults", tn.Quotas)
	}
}

func TestConfiguredModeRequiresKey(t *testing.T) {
	r, _ := testRegistry(t, []Tenant{{ID: "a", Key: "secret"}})
	if _, err := r.Authenticate(""); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("empty key with tenants configured: got %v, want ErrUnauthorized", err)
	}
	if _, err := r.Authenticate("wrong"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unknown key: got %v, want ErrUnauthorized", err)
	}
	tn, err := r.Authenticate("secret")
	if err != nil || tn.ID != "a" {
		t.Fatalf("valid key = %v, %v", tn, err)
	}
	// Zero quota fields were filled from the defaults at registration.
	if tn.Quotas.StepBudget != DefaultQuotas().StepBudget {
		t.Errorf("zero StepBudget not defaulted: %+v", tn.Quotas)
	}
}

func TestNewRejectsDuplicates(t *testing.T) {
	if _, err := New([]Tenant{{ID: "a", Key: "k1"}, {ID: "a", Key: "k2"}}); err == nil {
		t.Error("duplicate tenant ID accepted")
	}
	if _, err := New([]Tenant{{ID: "a", Key: "k"}, {ID: "b", Key: "k"}}); err == nil {
		t.Error("shared API key accepted — would merge two tenants' quotas")
	}
	if _, err := New([]Tenant{{ID: "", Key: "k"}}); err == nil {
		t.Error("empty tenant ID accepted")
	}
	if _, err := New([]Tenant{{ID: "a", Key: ""}}); err == nil {
		t.Error("empty API key accepted")
	}
}

func TestLoadFileBothShapes(t *testing.T) {
	dir := t.TempDir()
	wrapped := filepath.Join(dir, "wrapped.json")
	bare := filepath.Join(dir, "bare.json")
	if err := os.WriteFile(wrapped, []byte(`{"tenants":[{"id":"a","key":"ka"},{"id":"b","key":"kb"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bare, []byte(`[{"id":"a","key":"ka"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{wrapped, bare} {
		r, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", path, err)
		}
		if r.Anonymous() {
			t.Errorf("%s: loaded registry is anonymous", path)
		}
		if _, err := r.Authenticate("ka"); err != nil {
			t.Errorf("%s: tenant a key rejected: %v", path, err)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	junk := filepath.Join(dir, "junk.json")
	os.WriteFile(junk, []byte("not json"), 0o644)
	if _, err := LoadFile(junk); err == nil {
		t.Error("malformed file accepted")
	}
}
