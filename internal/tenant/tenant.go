// Package tenant is the multi-tenancy substrate of the campaign
// service's ingestion front door: per-tenant API keys, token-bucket rate
// limits, and resource quotas (stored programs, concurrent jobs, and the
// interpreter step budget that bounds how much compute one submission
// may burn during validation). The registry is deliberately small — a
// JSON file of tenants loaded at boot — because the hard part is not
// identity, it is making one tenant's abuse invisible to every other
// tenant: each tenant has its own bucket and its own quota counters, so
// exhausting one never blocks another.
package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Errors the HTTP layer maps to status codes.
var (
	// ErrUnauthorized rejects a missing or unknown API key (401).
	ErrUnauthorized = errors.New("tenant: missing or unknown API key")
)

// RateLimitError is a token-bucket rejection (429 + Retry-After).
type RateLimitError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("tenant %s: rate limit exceeded; retry in %s", e.Tenant, e.RetryAfter)
}

// QuotaError is a resource-quota rejection (429 + Retry-After: the
// resource frees up when jobs finish or programs are deleted).
type QuotaError struct {
	Tenant string
	Kind   string // "concurrent jobs", "stored programs", ...
	Used   int
	Limit  int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %s: %s quota exhausted (%d of %d in use)",
		e.Tenant, e.Kind, e.Used, e.Limit)
}

// Quotas bounds one tenant's resource consumption. Zero fields take the
// registry defaults (DefaultQuotas); explicit -1 means unlimited.
type Quotas struct {
	// RatePerSec is the token-bucket refill rate for submissions
	// (programs and jobs share one bucket per tenant).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity: how many submissions can land
	// back-to-back before the rate applies.
	Burst int `json:"burst,omitempty"`
	// MaxStoredPrograms caps the programs a tenant may keep submitted.
	MaxStoredPrograms int `json:"max_stored_programs,omitempty"`
	// MaxConcurrentJobs caps the tenant's open (queued/running/retrying)
	// campaign jobs.
	MaxConcurrentJobs int `json:"max_concurrent_jobs,omitempty"`
	// StepBudget is the interpreter step limit used to validate a
	// submitted program halts — the per-submission compute envelope.
	StepBudget uint64 `json:"step_budget,omitempty"`
}

// DefaultQuotas are the bounds a tenant gets when its record leaves a
// field zero, and the full quota set of the anonymous tenant.
func DefaultQuotas() Quotas {
	return Quotas{
		RatePerSec:        10,
		Burst:             20,
		MaxStoredPrograms: 64,
		MaxConcurrentJobs: 8,
		StepBudget:        2_000_000,
	}
}

// fill resolves zero fields against the defaults.
func (q Quotas) fill(d Quotas) Quotas {
	if q.RatePerSec == 0 {
		q.RatePerSec = d.RatePerSec
	}
	if q.Burst == 0 {
		q.Burst = d.Burst
	}
	if q.MaxStoredPrograms == 0 {
		q.MaxStoredPrograms = d.MaxStoredPrograms
	}
	if q.MaxConcurrentJobs == 0 {
		q.MaxConcurrentJobs = d.MaxConcurrentJobs
	}
	if q.StepBudget == 0 {
		q.StepBudget = d.StepBudget
	}
	return q
}

// Tenant is one registered API consumer.
type Tenant struct {
	// ID is the stable identity stamped into logs and metrics.
	ID string `json:"id"`
	// Name is a human label (informational).
	Name string `json:"name,omitempty"`
	// Key is the API key presented in the X-API-Key header. Keys are
	// opaque strings; the registry only ever compares them.
	Key string `json:"key"`
	// Quotas are the tenant's bounds; zero fields take the defaults.
	Quotas Quotas `json:"quotas,omitempty"`
}

// AnonymousID is the implicit tenant used when the registry has no
// configured tenants (the single-user development deployment): requests
// without a key are admitted under default quotas. As soon as one real
// tenant is configured, anonymous access is off and every request must
// present a key.
const AnonymousID = "anonymous"

// Registry authenticates API keys, meters each tenant's token bucket,
// and tracks quota usage. Safe for concurrent use. The now hook makes
// bucket refill testable against a fake clock.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*Tenant
	byID  map[string]*Tenant
	anon  *Tenant // non-nil only for an empty registry

	buckets map[string]*bucket
	usage   map[string]*usage

	now func() time.Time
}

// usage is one tenant's live resource consumption.
type usage struct {
	jobs     int
	programs int
}

// New builds a registry over the given tenants. With none, the registry
// serves the anonymous tenant under default quotas — the zero-config
// development mode. Duplicate IDs or keys are an error: a shared key
// would silently merge two tenants' quotas.
func New(tenants []Tenant) (*Registry, error) {
	r := &Registry{
		byKey:   map[string]*Tenant{},
		byID:    map[string]*Tenant{},
		buckets: map[string]*bucket{},
		usage:   map[string]*usage{},
		now:     time.Now,
	}
	for i := range tenants {
		t := tenants[i]
		if t.ID == "" {
			return nil, fmt.Errorf("tenant: record %d has no id", i)
		}
		if t.Key == "" {
			return nil, fmt.Errorf("tenant %s: empty API key", t.ID)
		}
		if _, dup := r.byID[t.ID]; dup {
			return nil, fmt.Errorf("tenant: duplicate id %q", t.ID)
		}
		if _, dup := r.byKey[t.Key]; dup {
			return nil, fmt.Errorf("tenant %s: key already registered to another tenant", t.ID)
		}
		t.Quotas = t.Quotas.fill(DefaultQuotas())
		r.byID[t.ID] = &t
		r.byKey[t.Key] = &t
	}
	if len(r.byID) == 0 {
		r.anon = &Tenant{ID: AnonymousID, Name: "anonymous", Quotas: DefaultQuotas()}
		r.byID[AnonymousID] = r.anon
	}
	return r, nil
}

// LoadFile reads a JSON tenants file: either a bare array of Tenant
// records or {"tenants": [...]}.
func LoadFile(path string) (*Registry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	var wrapped struct {
		Tenants []Tenant `json:"tenants"`
	}
	if err := json.Unmarshal(b, &wrapped); err != nil || len(wrapped.Tenants) == 0 {
		var bare []Tenant
		if err2 := json.Unmarshal(b, &bare); err2 != nil {
			if err == nil {
				err = err2
			}
			return nil, fmt.Errorf("tenant: %s does not parse as a tenants file: %w", path, err)
		}
		wrapped.Tenants = bare
	}
	return New(wrapped.Tenants)
}

// SetNow replaces the clock (tests).
func (r *Registry) SetNow(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
}

// Anonymous reports whether the registry is in zero-config mode.
func (r *Registry) Anonymous() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.anon != nil
}

// Authenticate resolves an API key to its tenant. An empty key is
// accepted only in anonymous mode.
func (r *Registry) Authenticate(key string) (*Tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.anon != nil {
		return r.anon, nil
	}
	t, ok := r.byKey[key]
	if !ok {
		return nil, ErrUnauthorized
	}
	return t, nil
}

// ByID resolves a tenant ID (for restart-time usage restoration).
func (r *Registry) ByID(id string) (*Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	return t, ok
}

// IDs lists registered tenant IDs (stable registry order not guaranteed).
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.byID))
	for id := range r.byID {
		out = append(out, id)
	}
	return out
}

// Allow consumes one token from the tenant's bucket, or returns a
// *RateLimitError telling the caller when the next token arrives.
func (r *Registry) Allow(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	if !ok {
		return ErrUnauthorized
	}
	if t.Quotas.RatePerSec < 0 {
		return nil // unlimited
	}
	b, ok := r.buckets[id]
	if !ok {
		b = newBucket(t.Quotas.RatePerSec, t.Quotas.Burst, r.now())
		r.buckets[id] = b
	}
	ok, wait := b.take(r.now())
	if !ok {
		return &RateLimitError{Tenant: id, RetryAfter: wait}
	}
	return nil
}

// AcquireJob reserves one concurrent-job slot, or returns *QuotaError.
// Release with ReleaseJob when the job reaches a terminal state.
func (r *Registry) AcquireJob(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	if !ok {
		return ErrUnauthorized
	}
	u := r.usageLocked(id)
	if lim := t.Quotas.MaxConcurrentJobs; lim >= 0 && u.jobs >= lim {
		return &QuotaError{Tenant: id, Kind: "concurrent jobs", Used: u.jobs, Limit: lim}
	}
	u.jobs++
	return nil
}

// RestoreJob re-counts a job restored from a previous life's state file
// against its tenant's usage without enforcing the limit: the job was
// already admitted once, and refusing to re-count it would let usage
// drift below reality.
func (r *Registry) RestoreJob(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.usageLocked(id).jobs++
}

// RestoreProgram re-counts a stored program restored at boot; see
// RestoreJob.
func (r *Registry) RestoreProgram(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.usageLocked(id).programs++
}

// ReleaseJob returns a concurrent-job slot.
func (r *Registry) ReleaseJob(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if u, ok := r.usage[id]; ok && u.jobs > 0 {
		u.jobs--
	}
}

// AcquireProgram reserves one stored-program slot, or returns
// *QuotaError. Resubmitting an already-stored program must not call
// this — a cache hit costs no quota.
func (r *Registry) AcquireProgram(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	if !ok {
		return ErrUnauthorized
	}
	u := r.usageLocked(id)
	if lim := t.Quotas.MaxStoredPrograms; lim >= 0 && u.programs >= lim {
		return &QuotaError{Tenant: id, Kind: "stored programs", Used: u.programs, Limit: lim}
	}
	u.programs++
	return nil
}

// ReleaseProgram returns a stored-program slot (program deleted).
func (r *Registry) ReleaseProgram(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if u, ok := r.usage[id]; ok && u.programs > 0 {
		u.programs--
	}
}

// Usage reports a tenant's live consumption (jobs, programs).
func (r *Registry) Usage(id string) (jobs, programs int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if u, ok := r.usage[id]; ok {
		return u.jobs, u.programs
	}
	return 0, 0
}

func (r *Registry) usageLocked(id string) *usage {
	u, ok := r.usage[id]
	if !ok {
		u = &usage{}
		r.usage[id] = u
	}
	return u
}
