// Package hwcost is an analytical area/energy model for the small CAM and
// RAM structures the co-design adds, standing in for CACTI 3.0 at 22nm
// (which the paper uses for Table 1). The model is first-order: area and
// per-access dynamic energy scale linearly with bit count, with CAM cells
// paying a constant factor over RAM cells for the match line and the
// comparison logic, plus a fixed per-structure periphery overhead. The
// coefficients are calibrated against the paper's published Table 1
// values, and the *ratios* the paper reports (Turnpike ≈ 9.8% of a 4-entry
// SB's area; a 40-entry SB ≈ 5× a 4-entry SB) emerge from the model rather
// than being hard-coded.
package hwcost

import "fmt"

// Kind is the storage technology of a structure.
type Kind int

const (
	// RAM is plain SRAM storage, indexed access.
	RAM Kind = iota
	// CAM is content-addressable storage (every entry compares on access).
	CAM
)

func (k Kind) String() string {
	if k == CAM {
		return "CAM"
	}
	return "RAM"
}

// Structure describes one hardware table.
type Structure struct {
	Name    string
	Kind    Kind
	Entries int
	// BitsPerEntry is the stored payload width.
	BitsPerEntry int
}

// Bits returns total storage bits.
func (s Structure) Bits() int { return s.Entries * s.BitsPerEntry }

// Model holds the technology coefficients (22nm-class defaults).
type Model struct {
	// RAMAreaPerBit / CAMAreaPerBit in µm² per bit.
	RAMAreaPerBit float64
	CAMAreaPerBit float64
	// RAMPeriphery / CAMPeriphery fixed area per structure, µm².
	RAMPeriphery float64
	CAMPeriphery float64
	// RAMEnergyPerBit / CAMEnergyPerBit in pJ per bit per access.
	RAMEnergyPerBit float64
	CAMEnergyPerBit float64
	// RAMEnergyPeriphery / CAMEnergyPeriphery fixed pJ per access (sense
	// amps, decoders; match-line precharge dominates the CAM constant).
	RAMEnergyPeriphery float64
	CAMEnergyPeriphery float64
}

// Default22nm returns coefficients solved from the paper's published
// Table 1 values (two structures of each kind give two equations per
// linear coefficient pair): 4/40-entry SBs for the CAM constants, color
// maps and CLQ for the RAM constants.
func Default22nm() Model {
	return Model{
		CAMAreaPerBit:      0.58125,
		CAMPeriphery:       342.28,
		RAMAreaPerBit:      0.190891,
		RAMPeriphery:       0.0,
		CAMEnergyPerBit:    0.00038987,
		CAMEnergyPeriphery: 0.24385,
		RAMEnergyPerBit:    0.000131146,
		RAMEnergyPeriphery: 0.0,
	}
}

// Area returns the structure's area in µm².
func (m Model) Area(s Structure) float64 {
	switch s.Kind {
	case CAM:
		return m.CAMPeriphery + m.CAMAreaPerBit*float64(s.Bits())
	default:
		return m.RAMPeriphery + m.RAMAreaPerBit*float64(s.Bits())
	}
}

// AccessEnergy returns the per-access dynamic energy in pJ.
func (m Model) AccessEnergy(s Structure) float64 {
	switch s.Kind {
	case CAM:
		return m.CAMEnergyPeriphery + m.CAMEnergyPerBit*float64(s.Bits())
	default:
		return m.RAMEnergyPeriphery + m.RAMEnergyPerBit*float64(s.Bits())
	}
}

// The evaluated structures (Table 1). An SB entry holds a 48-bit physical
// address tag (CAM-searched for store-to-load forwarding), 64 bits of
// data, and control state; the CLQ entry holds two 48-bit range bounds
// plus a region tag; the color maps hold 6 bits (3 maps × log2 4) per
// architectural register.
func StoreBuffer(entries int) Structure {
	return Structure{Name: fmt.Sprintf("%d-entry SB", entries), Kind: CAM,
		Entries: entries, BitsPerEntry: 48 + 64 + 8}
}

// ColorMaps is the AC/UC/VC state for 32 registers.
func ColorMaps() Structure {
	return Structure{Name: "color maps (AC/UC/VC)", Kind: RAM, Entries: 32, BitsPerEntry: 6}
}

// CLQ is the compact committed-load queue: 8 bytes per entry (two range
// bounds plus a region tag), matching the paper's "2-entry CLQ requires
// 16 bytes".
func CLQ(entries int) Structure {
	return Structure{Name: fmt.Sprintf("%d-entry CLQ", entries), Kind: RAM,
		Entries: entries, BitsPerEntry: 64}
}

// Table1Row is one line of the paper's Table 1.
type Table1Row struct {
	Name     string
	AreaUM2  float64
	EnergyPJ float64
}

// Table1 computes the paper's Table 1 with the given model.
func Table1(m Model) []Table1Row {
	sb4 := StoreBuffer(4)
	sb40 := StoreBuffer(40)
	cm := ColorMaps()
	clq := CLQ(2)
	rows := []Table1Row{
		{sb4.Name + " (CAM)", m.Area(sb4), m.AccessEnergy(sb4)},
		{"Color maps in Turnpike (RAM)", m.Area(cm), m.AccessEnergy(cm)},
		{clq.Name + " in Turnpike (RAM)", m.Area(clq), m.AccessEnergy(clq)},
		{"Turnpike in total (color maps + 2-entry CLQ)",
			m.Area(cm) + m.Area(clq), m.AccessEnergy(cm) + m.AccessEnergy(clq)},
		{sb40.Name + " (CAM)", m.Area(sb40), m.AccessEnergy(sb40)},
	}
	return rows
}

// Ratios returns (turnpikeTotal/sb4, sb40/sb4) for area and energy — the
// paper's bottom two Table 1 rows (≈9.8%/9.7% and ≈504%/497%).
func Ratios(m Model) (tpAreaPct, tpEnergyPct, sb40AreaPct, sb40EnergyPct float64) {
	sb4 := StoreBuffer(4)
	sb40 := StoreBuffer(40)
	tpArea := m.Area(ColorMaps()) + m.Area(CLQ(2))
	tpEnergy := m.AccessEnergy(ColorMaps()) + m.AccessEnergy(CLQ(2))
	return 100 * tpArea / m.Area(sb4),
		100 * tpEnergy / m.AccessEnergy(sb4),
		100 * m.Area(sb40) / m.Area(sb4),
		100 * m.AccessEnergy(sb40) / m.AccessEnergy(sb4)
}
