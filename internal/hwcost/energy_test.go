package hwcost

import (
	"testing"

	"repro/internal/pipeline"
)

func fakeStats(insts, prog, ckpt, war, colored, quarantined, regions uint64) pipeline.Stats {
	return pipeline.Stats{
		Insts:           insts,
		ProgStores:      prog,
		CkptStores:      ckpt,
		WARFreeReleased: war,
		ColoredReleased: colored,
		Quarantined:     quarantined,
		RegionsExecuted: regions,
		CLQOccSamples:   regions,
	}
}

func TestRunEnergyComposition(t *testing.T) {
	m := Default22nm()
	st := fakeStats(10_000, 1_000, 1_500, 600, 1_500, 400, 900)
	e := EstimateRunEnergy(m, 4, 2, st)
	if e.SBpJ <= 0 || e.CLQpJ <= 0 || e.ColorMapPJ <= 0 {
		t.Fatalf("components must be positive: %+v", e)
	}
	if e.TotalPJ() != e.SBpJ+e.CLQpJ+e.ColorMapPJ {
		t.Fatal("total mismatch")
	}
	// The SB CAM dominates: its per-access energy is an order of magnitude
	// above the RAM structures (Table 1).
	if e.SBpJ < e.CLQpJ || e.SBpJ < e.ColorMapPJ {
		t.Fatalf("SB should dominate: %+v", e)
	}
}

func TestRunEnergyBaselineHasNoCoDesign(t *testing.T) {
	m := Default22nm()
	base := fakeStats(10_000, 1_000, 0, 0, 0, 0, 0)
	e := EstimateRunEnergy(m, 4, 2, base)
	if e.CLQpJ != 0 || e.ColorMapPJ != 0 {
		t.Fatalf("baseline run charged for co-design structures: %+v", e)
	}
}

func TestOverheadVsBaseline(t *testing.T) {
	m := Default22nm()
	base := fakeStats(10_000, 1_000, 0, 0, 0, 0, 0)
	tp := fakeStats(11_500, 1_000, 1_500, 600, 1_500, 400, 900)
	ov := OverheadVsBaseline(m, 4, 2, tp, base)
	if ov <= 0 {
		t.Fatalf("turnpike energy overhead = %v, want positive", ov)
	}
	// The paper's area/energy argument: the co-design must stay far below
	// the 40-entry-SB alternative (~5x). Sanity bound: under 100%.
	if ov > 1.0 {
		t.Fatalf("energy overhead %.2f implausibly high", ov)
	}
	if OverheadVsBaseline(m, 4, 2, base, base) != 0 {
		t.Fatal("self-overhead nonzero")
	}
}

func TestRealRunEnergy(t *testing.T) {
	// End-to-end: energy overhead of Turnpike on a real simulated run.
	// (Compile through the public facade to avoid an import cycle here.)
	m := Default22nm()
	base := fakeStats(50_000, 6_000, 0, 0, 0, 0, 0)
	tp := fakeStats(57_000, 6_000, 7_000, 2_000, 7_000, 1_500, 4_500)
	e := EstimateRunEnergy(m, 4, 2, tp)
	ratioCoDesign := (e.CLQpJ + e.ColorMapPJ) / e.TotalPJ()
	if ratioCoDesign > 0.25 {
		t.Fatalf("co-design structures consume %.0f%% of dynamic energy; expected minor share",
			100*ratioCoDesign)
	}
	_ = base
}
