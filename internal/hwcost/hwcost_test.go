package hwcost

import (
	"math"
	"testing"
)

func within(got, want, tolPct float64) bool {
	return math.Abs(got-want) <= want*tolPct/100
}

func TestTable1MatchesPublishedValues(t *testing.T) {
	// Paper Table 1 (CACTI, 22nm): the model coefficients were solved
	// from these values, so the match must be tight.
	m := Default22nm()
	cases := []struct {
		s    Structure
		area float64 // µm²
		pj   float64 // pJ per access
	}{
		{StoreBuffer(4), 621.28, 0.43099},
		{ColorMaps(), 36.651, 0.02518},
		{CLQ(2), 24.434, 0.01679},
		{StoreBuffer(40), 3132.50, 2.11525},
	}
	for _, c := range cases {
		if got := m.Area(c.s); !within(got, c.area, 2) {
			t.Errorf("%s area = %.2f, want %.2f", c.s.Name, got, c.area)
		}
		if got := m.AccessEnergy(c.s); !within(got, c.pj, 2) {
			t.Errorf("%s energy = %.5f, want %.5f", c.s.Name, got, c.pj)
		}
	}
}

func TestTable1Ratios(t *testing.T) {
	// Bottom rows of Table 1: Turnpike ≈ 9.8%/9.7% of the 4-entry SB;
	// a 40-entry SB ≈ 504%/497% of it.
	a, e, a40, e40 := Ratios(Default22nm())
	if !within(a, 9.8, 5) || !within(e, 9.7, 5) {
		t.Errorf("Turnpike ratios = %.1f%%/%.1f%%, want ~9.8/9.7", a, e)
	}
	if !within(a40, 504, 3) || !within(e40, 497, 3) {
		t.Errorf("40-entry SB ratios = %.0f%%/%.0f%%, want ~504/497", a40, e40)
	}
}

func TestTable1RowsComplete(t *testing.T) {
	rows := Table1(Default22nm())
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.AreaUM2 <= 0 || r.EnergyPJ <= 0 {
			t.Errorf("row %q has non-positive values", r.Name)
		}
	}
}

func TestMonotoneInBits(t *testing.T) {
	m := Default22nm()
	if m.Area(StoreBuffer(8)) <= m.Area(StoreBuffer(4)) {
		t.Error("area not monotone in entries")
	}
	if m.AccessEnergy(CLQ(4)) <= m.AccessEnergy(CLQ(2)) {
		t.Error("energy not monotone in entries")
	}
}

func TestCAMCostsMoreThanRAM(t *testing.T) {
	m := Default22nm()
	ram := Structure{Name: "r", Kind: RAM, Entries: 4, BitsPerEntry: 120}
	cam := Structure{Name: "c", Kind: CAM, Entries: 4, BitsPerEntry: 120}
	if m.Area(cam) <= m.Area(ram) || m.AccessEnergy(cam) <= m.AccessEnergy(ram) {
		t.Error("CAM not more expensive than RAM at equal bits")
	}
}
