package hwcost

import "repro/internal/pipeline"

// RunEnergy estimates the dynamic energy the co-design structures spend
// during one simulated run, by combining the per-access energies of the
// analytical model with the simulator's event counters. This extends the
// paper's static Table 1 into a per-workload number: Turnpike's color-map
// and CLQ accesses versus the store-buffer CAM searches both schemes pay.
//
// Accounting (per event, in pJ):
//
//   - every store commits into the SB and drains: 2 SB accesses;
//   - every load searches the SB for forwarding: 1 SB access;
//   - every CLQ-checked load/store touches the CLQ once;
//   - every colored checkpoint reads AC and writes UC (2 color-map
//     accesses); every verification moves UC to VC (1 more).
type RunEnergy struct {
	SBpJ       float64
	CLQpJ      float64
	ColorMapPJ float64
}

// TotalPJ is the summed dynamic energy.
func (e RunEnergy) TotalPJ() float64 { return e.SBpJ + e.CLQpJ + e.ColorMapPJ }

// EstimateRunEnergy computes the estimate for a finished run.
func EstimateRunEnergy(m Model, sbEntries, clqEntries int, st pipeline.Stats) RunEnergy {
	sb := m.AccessEnergy(StoreBuffer(sbEntries))
	clq := m.AccessEnergy(CLQ(clqEntries))
	cm := m.AccessEnergy(ColorMaps())

	stores := float64(st.ProgStores + st.SpillStores + st.CkptStores)
	loads := float64(st.Insts) * 0.25 // loads searched the SB; ~load ratio
	if st.Insts > 0 {
		// Better estimate when the store mix is known: treat the
		// non-store, non-checkpoint remainder as 25% loads.
		loads = float64(st.Insts-st.ProgStores-st.SpillStores-st.CkptStores) * 0.25
	}

	var e RunEnergy
	e.SBpJ = sb * (2*stores + loads)
	clqTouches := float64(st.WARFreeReleased + st.Quarantined) // store-side checks
	clqTouches += loads                                        // load-side insertions
	if st.CLQOccSamples > 0 || st.WARFreeReleased > 0 {
		e.CLQpJ = clq * clqTouches
	}
	if st.ColoredReleased > 0 {
		e.ColorMapPJ = cm * (2*float64(st.ColoredReleased) + float64(st.RegionsExecuted))
	}
	return e
}

// OverheadVsBaseline returns the co-design's relative dynamic-energy
// overhead against a baseline run on the same store buffer: the extra CLQ
// and color-map energy, plus any extra SB traffic from checkpoint stores,
// divided by the baseline's SB energy.
func OverheadVsBaseline(m Model, sbEntries, clqEntries int, scheme, baseline pipeline.Stats) float64 {
	s := EstimateRunEnergy(m, sbEntries, clqEntries, scheme)
	b := EstimateRunEnergy(m, sbEntries, clqEntries, baseline)
	if b.TotalPJ() == 0 {
		return 0
	}
	return s.TotalPJ()/b.TotalPJ() - 1
}
