package regalloc

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

// buildWide builds a straight-line function with n simultaneously-live
// values to force spilling when n exceeds the allocatable register count.
func buildWide(n int) *ir.Func {
	b := ir.NewBuilder("wide")
	out := b.MovI(int64(isa.DataBase))
	vals := make([]ir.VReg, n)
	for i := range vals {
		vals[i] = b.MovI(int64(i + 1))
	}
	// Use all values after all definitions so they are simultaneously live.
	sum := b.MovI(0)
	for _, v := range vals {
		b.OpTo(isa.ADD, sum, sum, v)
	}
	b.Store(out, 0, sum)
	b.Halt()
	return b.MustFinish()
}

func runFunc(t *testing.T, f *ir.Func) *isa.Memory {
	t.Helper()
	it, err := ir.RunIR(f)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	return it.Mem
}

// maskPrivate drops spill-slot and checkpoint words so memories can be
// compared on program output only.
func maskPrivate(m *isa.Memory) *isa.Memory {
	out := isa.NewMemory()
	for _, e := range m.Snapshot() {
		if e.Addr >= isa.StackBase && e.Addr < isa.StackLimit {
			continue
		}
		if e.Addr >= isa.DefaultCkptBase {
			continue
		}
		out.Store(e.Addr, e.Val)
	}
	return out
}

func TestAllocateNoSpill(t *testing.T) {
	f := buildWide(10)
	golden := runFunc(t, f.Clone())
	res, err := Allocate(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spilled) != 0 {
		t.Fatalf("spilled %v with only 10 values live", res.Spilled)
	}
	if f.NumVRegs != isa.NumRegs {
		t.Fatalf("NumVRegs = %d, want %d", f.NumVRegs, isa.NumRegs)
	}
	got := maskPrivate(runFunc(t, f))
	want := maskPrivate(golden)
	if !want.Equal(got) {
		t.Fatalf("allocation changed semantics:\n%s", want.Diff(got, 10))
	}
}

func TestAllocateWithSpills(t *testing.T) {
	f := buildWide(60)
	golden := runFunc(t, f.Clone())
	res, err := Allocate(f, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spilled) == 0 {
		t.Fatal("expected spills with 60 simultaneously-live values")
	}
	if res.SpillStores == 0 || res.SpillLoads == 0 {
		t.Fatalf("spill code missing: stores=%d loads=%d", res.SpillStores, res.SpillLoads)
	}
	got := maskPrivate(runFunc(t, f))
	want := maskPrivate(golden)
	if !want.Equal(got) {
		t.Fatalf("spilling changed semantics:\n%s", want.Diff(got, 10))
	}
	// All remaining vregs must be physical.
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			var uses []ir.VReg
			for _, u := range b.Instrs[i].Uses(uses) {
				if int(u) >= isa.NumRegs {
					t.Fatalf("unallocated vreg %v survives", u)
				}
			}
			if d, ok := b.Instrs[i].Def(); ok && int(d) >= isa.NumRegs {
				t.Fatalf("unallocated def %v survives", d)
			}
		}
	}
}

// TestStoreAwareWeightReducesSpillStores reproduces the mechanism behind the
// paper's §4.1.1: raising the write weight keeps frequently-written
// variables in registers, trading them against read-mostly ones.
func TestStoreAwareWeightReducesSpillStores(t *testing.T) {
	build := func() *ir.Func {
		b := ir.NewBuilder("rw")
		out := b.MovI(int64(isa.DataBase))
		// Read-mostly values: defined once, used in the loop.
		nRead := 30
		reads := make([]ir.VReg, nRead)
		for i := range reads {
			reads[i] = b.MovI(int64(i))
		}
		// Write-hot values: redefined every iteration.
		hot := make([]ir.VReg, 4)
		for i := range hot {
			hot[i] = b.MovI(0)
		}
		i := b.MovI(0)
		head, body, exit := b.NewBlock(), b.NewBlock(), b.NewBlock()
		b.Fallthrough(head)
		b.SetBlock(head)
		b.BranchI(isa.BGE, i, 64, exit, body)
		b.SetBlock(body)
		for k, h := range hot {
			b.OpITo(isa.ADD, h, h, int64(k+1)) // write-hot: one write per iter
		}
		acc := b.MovI(0)
		for _, r := range reads {
			b.OpTo(isa.ADD, acc, acc, r) // read-only uses
		}
		b.OpTo(isa.ADD, hot[0], hot[0], acc)
		b.OpITo(isa.ADD, i, i, 1)
		b.Jump(head)
		b.SetBlock(exit)
		b.Store(out, 0, hot[0])
		b.Halt()
		return b.MustFinish()
	}

	base := build()
	golden := runFunc(t, base.Clone())
	_, err := Allocate(base, Config{WriteWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	aware := build()
	_, err = Allocate(aware, Config{WriteWeight: 3})
	if err != nil {
		t.Fatal(err)
	}

	countDynSpillStores := func(f *ir.Func) int {
		// Static count inside the loop approximates dynamic frequency.
		n := 0
		dt := ir.ComputeDominators(f)
		lf := ir.FindLoops(f, dt)
		for _, b := range f.Blocks {
			if lf.Depth(b) == 0 {
				continue
			}
			for i := range b.Instrs {
				if b.Instrs[i].Op == isa.ST && b.Instrs[i].Kind == isa.StoreSpill {
					n++
				}
			}
		}
		return n
	}
	nb, na := countDynSpillStores(base), countDynSpillStores(aware)
	if na > nb {
		t.Fatalf("store-aware allocation increased in-loop spill stores: %d -> %d", nb, na)
	}
	// Semantics preserved either way.
	got := maskPrivate(runFunc(t, aware))
	want := maskPrivate(golden)
	if !want.Equal(got) {
		t.Fatalf("store-aware allocation changed semantics:\n%s", want.Diff(got, 10))
	}
}

// TestAllocateRandomPrograms is a property test: allocation must preserve
// the program's observable memory for arbitrary straight-line programs.
func TestAllocateRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ops := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR}
	for trial := 0; trial < 50; trial++ {
		b := ir.NewBuilder("rand")
		out := b.MovI(int64(isa.DataBase))
		var pool []ir.VReg
		for i := 0; i < 8; i++ {
			pool = append(pool, b.MovI(int64(rng.Intn(100))))
		}
		n := 20 + rng.Intn(60)
		for i := 0; i < n; i++ {
			op := ops[rng.Intn(len(ops))]
			a := pool[rng.Intn(len(pool))]
			c := pool[rng.Intn(len(pool))]
			pool = append(pool, b.Op(op, a, c))
		}
		// Store a handful of results.
		for i := 0; i < 5; i++ {
			b.Store(out, int64(i*8), pool[len(pool)-1-i*3])
		}
		b.Halt()
		f := b.MustFinish()

		golden := maskPrivate(runFunc(t, f.Clone()))
		ww := 1 + rng.Intn(4)
		if _, err := Allocate(f, Config{WriteWeight: ww}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := maskPrivate(runFunc(t, f))
		if !golden.Equal(got) {
			t.Fatalf("trial %d (ww=%d): semantics changed:\n%s", trial, ww, golden.Diff(got, 10))
		}
	}
}

func TestPrologueSetsSP(t *testing.T) {
	f := buildWide(5)
	if _, err := Allocate(f, Config{}); err != nil {
		t.Fatal(err)
	}
	first := f.Blocks[0].Instrs[0]
	if first.Op != isa.MOVI || first.Dst != 0 || uint64(first.Imm) != isa.StackBase {
		t.Fatalf("prologue = %v, want movi v0,#%d", first.String(), isa.StackBase)
	}
}
