package regalloc

// SetDebugVReg enables allocation tracing for one virtual register; pass
// -1 to disable. Diagnostic hook used by fuzz-failure reproductions.
func SetDebugVReg(v int) { debugVReg = v }
