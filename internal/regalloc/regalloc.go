// Package regalloc assigns physical registers to IR virtual registers with
// a linear-scan allocator and inserts spill code for the rest.
//
// The paper's "store-aware register allocation" (§4.1.1) is the WriteWeight
// knob: traditional allocators weigh reads and writes equally when choosing
// spill candidates, which generates superfluous spill *stores*; Turnpike
// raises the cost of writes so frequently-written variables stay in
// registers and store-buffer traffic drops.
package regalloc

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Config controls allocation.
type Config struct {
	// WriteWeight is the spill-cost multiplier for definitions. 1 models a
	// traditional allocator; Turnpike's store-aware allocation uses a
	// larger value (the paper's "RA trick").
	WriteWeight int
}

// debugVReg enables tracing of one vreg's allocation journey (tests).
var debugVReg = -1

// Register partitioning. r0 is the stack pointer; r29..r31 are reserved as
// spill scratch so any instruction's operands can be reloaded.
const (
	firstAlloc = 1
	lastAlloc  = 28
	scratch0   = 29
	scratch1   = 30
	scratch2   = 31
)

// Result reports what the allocator did, for the Fig. 23 store breakdown.
type Result struct {
	// Spilled lists the spilled virtual registers of the input function.
	Spilled []ir.VReg
	// SpillStores / SpillLoads count inserted static spill instructions.
	SpillStores int
	SpillLoads  int
	// Assigned maps input vregs to physical registers (spilled vregs absent).
	Assigned map[ir.VReg]isa.Reg
}

type interval struct {
	vreg       ir.VReg
	start, end int
	weight     float64
}

// Allocate rewrites f so that every remaining virtual register number is a
// physical register number in [0, isa.NumRegs). It inserts spill code and a
// prologue that initializes the stack pointer. The rewritten function still
// passes ir.Verify and can be interpreted directly (spill slots are ordinary
// memory in [isa.StackBase, isa.StackLimit)).
func Allocate(f *ir.Func, cfg Config) (*Result, error) {
	if cfg.WriteWeight <= 0 {
		cfg.WriteWeight = 1
	}
	lv := ir.ComputeLiveness(f)
	dt := ir.ComputeDominators(f)
	loops := ir.FindLoops(f, dt)

	// Linearize: number instructions in block order. Each block occupies
	// [blockStart[b], blockEnd[b]).
	pos := 0
	blockStart := make(map[*ir.Block]int, len(f.Blocks))
	blockEnd := make(map[*ir.Block]int, len(f.Blocks))
	for _, b := range f.Blocks {
		blockStart[b] = pos
		pos += len(b.Instrs)
		blockEnd[b] = pos
	}

	// Build conservative live intervals: a vreg's interval covers every
	// position where it is defined or used, extended over whole blocks
	// where it is live-in or live-out.
	iv := map[ir.VReg]*interval{}
	touch := func(v ir.VReg, p int, w float64) {
		if int(v) < 0 {
			return
		}
		in, ok := iv[v]
		if !ok {
			in = &interval{vreg: v, start: p, end: p}
			iv[v] = in
		}
		if p < in.start {
			in.start = p
		}
		if p > in.end {
			in.end = p
		}
		in.weight += w
	}
	var uses []ir.VReg
	for _, b := range f.Blocks {
		freq := blockFreq(loops.Depth(b))
		p := blockStart[b]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				touch(u, p, freq)
			}
			if d, ok := in.Def(); ok {
				touch(d, p, freq*float64(cfg.WriteWeight))
			}
			p++
		}
		extend := func(v ir.VReg, at int) {
			if in, ok := iv[v]; ok {
				if at < in.start {
					in.start = at
				}
				if at > in.end {
					in.end = at
				}
			} else {
				iv[v] = &interval{vreg: v, start: at, end: at}
			}
		}
		lv.In[b].ForEach(func(v ir.VReg) {
			extend(v, blockStart[b])
			if e := blockEnd[b] - 1; e >= blockStart[b] {
				extend(v, e)
			}
		})
		lv.Out[b].ForEach(func(v ir.VReg) {
			extend(v, blockStart[b])
			if e := blockEnd[b] - 1; e >= blockStart[b] {
				extend(v, e)
			}
		})
	}

	ivs := make([]*interval, 0, len(iv))
	for _, in := range iv {
		ivs = append(ivs, in)
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].start != ivs[j].start {
			return ivs[i].start < ivs[j].start
		}
		return ivs[i].vreg < ivs[j].vreg
	})

	// Linear scan with spilling of the cheapest conflicting interval.
	res := &Result{Assigned: make(map[ir.VReg]isa.Reg, len(ivs))}
	free := make([]isa.Reg, 0, lastAlloc-firstAlloc+1)
	for r := lastAlloc; r >= firstAlloc; r-- {
		free = append(free, isa.Reg(r)) // pop from tail -> ascending order
	}
	type active struct {
		in  *interval
		reg isa.Reg
	}
	var act []active
	spilled := map[ir.VReg]bool{}
	for _, in := range ivs {
		if debugVReg >= 0 && in.vreg == ir.VReg(debugVReg) {
			fmt.Printf("DBG v%d: interval [%d,%d] w=%.1f\n", debugVReg, in.start, in.end, in.weight)
		}
		// Expire finished intervals.
		kept := act[:0]
		for _, a := range act {
			if a.in.end < in.start {
				free = append(free, a.reg)
			} else {
				kept = append(kept, a)
			}
		}
		act = kept
		if len(free) > 0 {
			r := free[len(free)-1]
			free = free[:len(free)-1]
			res.Assigned[in.vreg] = r
			act = append(act, active{in, r})
			continue
		}
		// Spill the interval with the lowest weight *density* (weight per
		// covered instruction) among active + current — the classic
		// cost/degree heuristic. Without the normalization, long-lived
		// low-traffic values (live-through-loop constants) would out-rank
		// short hot loop temporaries and the allocator would thrash.
		density := func(iv *interval) float64 {
			return iv.weight / float64(iv.end-iv.start+1)
		}
		victim := -1 // index into act; -1 means current
		minW := density(in)
		for i, a := range act {
			if d := density(a.in); d < minW {
				minW = d
				victim = i
			}
		}
		if victim == -1 {
			spilled[in.vreg] = true
			res.Spilled = append(res.Spilled, in.vreg)
			continue
		}
		v := act[victim]
		if debugVReg >= 0 && v.in.vreg == ir.VReg(debugVReg) {
			fmt.Printf("DBG v%d: victimized\n", debugVReg)
		}
		spilled[v.in.vreg] = true
		res.Spilled = append(res.Spilled, v.in.vreg)
		delete(res.Assigned, v.in.vreg)
		res.Assigned[in.vreg] = v.reg
		act[victim] = active{in, v.reg}
	}
	sort.Slice(res.Spilled, func(i, j int) bool { return res.Spilled[i] < res.Spilled[j] })

	// Assign stack slots to spilled vregs.
	slotOf := map[ir.VReg]int64{}
	for i, v := range res.Spilled {
		off := int64(i) * 8
		if isa.StackBase+uint64(off) >= isa.StackLimit {
			return nil, fmt.Errorf("regalloc: %s spill area overflow (%d spills)", f.Name, len(res.Spilled))
		}
		slotOf[v] = off
	}

	// Rewrite instructions: map assigned vregs to phys numbers, wrap
	// spilled operands with scratch loads/stores.
	mapReg := func(v ir.VReg) ir.VReg {
		if v == ir.NoReg {
			return ir.NoReg
		}
		if r, ok := res.Assigned[v]; ok {
			return ir.VReg(r)
		}
		panic(fmt.Sprintf("regalloc: unmapped vreg %v", v))
	}
	for _, b := range f.Blocks {
		out := make([]ir.Instr, 0, len(b.Instrs))
		for i := range b.Instrs {
			in := b.Instrs[i] // copy
			scratches := []ir.VReg{scratch0, scratch1, scratch2}
			takeScratch := func() ir.VReg {
				s := scratches[0]
				scratches = scratches[1:]
				return s
			}
			reload := func(v ir.VReg) ir.VReg {
				if v == ir.NoReg {
					return ir.NoReg
				}
				if !spilled[v] {
					return mapReg(v)
				}
				s := takeScratch()
				out = append(out, ir.Instr{Op: isa.LD, Dst: s, Src1: 0, Src2: ir.NoReg, Imm: slotOf[v] + int64(isa.StackBase)})
				res.SpillLoads++
				return s
			}
			// Source operands first (loads precede the instruction). Only
			// operands the op actually reads are mapped — synthesized
			// instructions (e.g. a NOP left by a pass) may carry
			// zero-valued operand fields that are not register references.
			src1, src2 := in.Src1, in.Src2
			if usesSrc1(&in) {
				in.Src1 = reload(src1)
			} else {
				in.Src1 = ir.NoReg
			}
			if usesSrc2(&in) {
				in.Src2 = reload(src2)
			} else {
				in.Src2 = ir.NoReg
			}
			// Destination.
			var spillDst ir.VReg = ir.NoReg
			if d, ok := in.Def(); ok {
				if spilled[d] {
					s := takeScratch()
					in.Dst = s
					spillDst = d
				} else {
					in.Dst = mapReg(d)
				}
			} else {
				in.Dst = ir.NoReg
			}
			out = append(out, in)
			if spillDst != ir.NoReg {
				out = append(out, ir.Instr{
					Op: isa.ST, Dst: ir.NoReg, Src1: 0, Src2: out[len(out)-1].Dst,
					Imm: slotOf[spillDst] + int64(isa.StackBase), Kind: isa.StoreSpill,
				})
				res.SpillStores++
				// Keep terminators terminal: defs never terminate blocks, so
				// this is safe (branches/halt define nothing).
			}
		}
		b.Instrs = out
	}

	// Prologue: initialize the stack pointer. Even spill-free functions get
	// it so every compiled program has a consistent register file.
	entry := f.Blocks[0]
	entry.Instrs = append([]ir.Instr{{Op: isa.MOVI, Dst: 0, Src1: ir.NoReg, Src2: ir.NoReg, Imm: int64(isa.StackBase)}}, entry.Instrs...)

	f.NumVRegs = isa.NumRegs
	f.RecomputePreds()
	if err := f.Verify(); err != nil {
		return nil, fmt.Errorf("regalloc: output invalid: %w", err)
	}
	return res, nil
}

// usesSrc1 reports whether the instruction reads Src1.
func usesSrc1(in *ir.Instr) bool {
	switch in.Op {
	case isa.MOVI, isa.NOP, isa.BOUND, isa.HALT, isa.JMP, isa.RESTORE:
		return false
	case isa.CKPT:
		return false // checkpoint data travels in Src2
	default:
		return true
	}
}

// usesSrc2 reports whether the instruction reads Src2.
func usesSrc2(in *ir.Instr) bool {
	switch in.Op {
	case isa.ST, isa.CKPT:
		return true
	case isa.MOVI, isa.MOV, isa.LD, isa.NOP, isa.BOUND, isa.HALT, isa.JMP, isa.RESTORE:
		return false
	default:
		return !in.HasImm
	}
}

// blockFreq estimates execution frequency from loop depth, the standard
// 10^depth heuristic.
func blockFreq(depth int) float64 {
	f := 1.0
	for i := 0; i < depth && i < 6; i++ {
		f *= 10
	}
	return f
}
