// Package sensor models the acoustic-wave soft-error detector mesh the
// paper builds on (Upasani et al.). Particle strikes emit a sound wave in
// the silicon; a mesh of N sensors on the die detects the wave within a
// worst-case detection latency (WCDL) bounded by the propagation time from
// the farthest point of a sensor's cell to the sensor, scaled by the clock
// frequency. More sensors mean smaller cells and lower WCDL (the paper's
// Fig. 18: 300 sensors ≈ 10 cycles at 2.5GHz on a 1mm² die).
package sensor

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// SoundSpeed is the acoustic propagation speed in silicon, m/s.
const SoundSpeed = 8433.0

// GeomFactor converts a sensor cell's area to the effective worst-case
// propagation distance: distance = GeomFactor * sqrt(cellArea). A lone
// center sensor in a square cell would give the half-diagonal (≈0.707);
// overlapping coverage from neighboring sensors shortens the effective
// worst case. The value is calibrated so the published operating points
// hold: ≈10 cycles for 300 sensors and ≈30 for 30 sensors at 2.5GHz, 1mm².
const GeomFactor = 0.585

// Model describes a deployed sensor mesh.
type Model struct {
	// Sensors is the number of deployed detectors.
	Sensors int
	// DieAreaMM2 is the protected die area in square millimetres.
	DieAreaMM2 float64
	// ClockGHz is the core clock frequency.
	ClockGHz float64
}

// Validate checks the configuration.
func (m Model) Validate() error {
	if m.Sensors <= 0 {
		return fmt.Errorf("sensor: %d sensors", m.Sensors)
	}
	if m.DieAreaMM2 <= 0 || m.ClockGHz <= 0 {
		return fmt.Errorf("sensor: area %.2f / clock %.2f", m.DieAreaMM2, m.ClockGHz)
	}
	return nil
}

// WCDL returns the worst-case detection latency in cycles. With N sensors
// tiling area A, each sensor covers a cell of A/N; the worst-case distance
// is the cell's half-diagonal, so latency = distance / v_sound converted
// to cycles at the configured clock, rounded up. The constants are chosen
// so the published operating points hold: ≈10 cycles for 300 sensors and
// ≈30 cycles for 30 sensors at 2.5GHz on 1mm².
func (m Model) WCDL() int {
	cellArea := m.DieAreaMM2 / float64(m.Sensors) // mm²
	// Effective worst-case distance within a cell, in millimetres.
	dist := GeomFactor * math.Sqrt(cellArea)
	meters := dist / 1000.0
	seconds := meters / SoundSpeed
	cycles := seconds * m.ClockGHz * 1e9
	w := int(math.Ceil(cycles))
	if w < 1 {
		w = 1
	}
	return w
}

// SensorsForWCDL returns the minimum sensor count achieving the target
// WCDL (the inverse of WCDL, used to regenerate Fig. 18's axes).
func SensorsForWCDL(target int, dieAreaMM2, clockGHz float64) int {
	if target < 1 {
		target = 1
	}
	// Invert: cycles = (sqrt(2*A/N)/2)/1000/v * f*1e9  =>  N = A*f²*1e18/(2e6*v²*cycles²)... solve numerically
	// for robustness against the ceil.
	for n := 1; n <= 1_000_000; n *= 2 {
		if (Model{Sensors: n, DieAreaMM2: dieAreaMM2, ClockGHz: clockGHz}).WCDL() <= target {
			// binary search between n/2 and n
			lo, hi := n/2+1, n
			if n == 1 {
				return 1
			}
			for lo < hi {
				mid := (lo + hi) / 2
				if (Model{Sensors: mid, DieAreaMM2: dieAreaMM2, ClockGHz: clockGHz}).WCDL() <= target {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			return lo
		}
	}
	return 1_000_000
}

// Sampler is the per-strike latency stream: one call, one detection
// latency in cycles. Both detector flavours implement it, as does any
// campaign-supplied override.
type Sampler interface {
	Latency() int
}

// Detector samples per-strike detection latencies for fault-injection
// campaigns: an actual strike is detected after a latency uniform in
// [1, WCDL] cycles — the mesh guarantees the upper bound, and the lower
// spread models strike position relative to the nearest sensor.
type Detector struct {
	wcdl     int
	rng      *rng.Stream
	onSample func(int)
}

// SetObserver registers fn to receive every sampled latency (nil
// disables). Fault campaigns use it to feed detection-latency histograms.
func (d *Detector) SetObserver(fn func(int)) { d.onSample = fn }

// NewDetector builds a detector for a fixed WCDL and seed.
func NewDetector(wcdl int, seed int64) *Detector {
	if wcdl < 1 {
		wcdl = 1
	}
	return &Detector{wcdl: wcdl, rng: rng.New(seed)}
}

// WCDL returns the guaranteed detection bound in cycles.
func (d *Detector) WCDL() int { return d.wcdl }

// Fork returns an independent detector over the same mesh whose latency
// stream is a pure function of seed. Parallel fault campaigns fork one
// stream per trial so the injection plan does not depend on how trials
// are interleaved across workers. The fork carries no observer — trial
// latencies are recorded at merge time, in trial order.
func (d *Detector) Fork(seed int64) Sampler { return NewDetector(d.wcdl, seed) }

// Reseed resets the latency stream in place to what Fork(seed) would
// produce, without allocating. Campaign planners reuse one forked
// detector across trials.
func (d *Detector) Reseed(seed int64) { d.rng.Reseed(seed) }

// Latency samples one detection latency in [1, WCDL].
func (d *Detector) Latency() int {
	lat := 1 + d.rng.Intn(d.wcdl)
	if d.onSample != nil {
		d.onSample(lat)
	}
	return lat
}

// PhysicalDetector refines Detector with the mesh geometry: sensors sit on
// a √N×√N grid over the die; a strike lands uniformly at random and is
// heard by the nearest sensor after the acoustic propagation time. The
// resulting latency distribution is front-loaded (most strikes land near
// some sensor) with a hard tail at the WCDL — unlike the uniform Detector,
// which over-weights late detections.
type PhysicalDetector struct {
	model    Model
	side     int // sensors per grid side
	pitch    float64
	rng      *rng.Stream
	onSample func(int)
}

// SetObserver registers fn to receive every sampled latency (nil disables).
func (d *PhysicalDetector) SetObserver(fn func(int)) { d.onSample = fn }

// NewPhysicalDetector builds a grid-placed detector for the model.
func NewPhysicalDetector(m Model, seed int64) (*PhysicalDetector, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	side := int(math.Floor(math.Sqrt(float64(m.Sensors))))
	if side < 1 {
		side = 1
	}
	edge := math.Sqrt(m.DieAreaMM2) // die edge length, mm
	return &PhysicalDetector{
		model: m,
		side:  side,
		pitch: edge / float64(side),
		rng:   rng.New(seed),
	}, nil
}

// Latency samples one detection latency in cycles: the propagation time
// from a uniform strike position to its nearest grid sensor, at least 1.
func (d *PhysicalDetector) Latency() int {
	// Position within one grid cell; the nearest sensor sits at the cell
	// center, so the offset folds into [0, pitch/2] per axis.
	dx := math.Abs(d.rng.Float64()*d.pitch - d.pitch/2)
	dy := math.Abs(d.rng.Float64()*d.pitch - d.pitch/2)
	distMM := math.Sqrt(dx*dx + dy*dy)
	seconds := distMM / 1000.0 / SoundSpeed
	cycles := int(math.Ceil(seconds * d.model.ClockGHz * 1e9))
	if cycles < 1 {
		cycles = 1
	}
	if w := d.model.WCDL(); cycles > w {
		cycles = w // the mesh guarantees the bound
	}
	if d.onSample != nil {
		d.onSample(cycles)
	}
	return cycles
}

// WCDL returns the mesh's guaranteed bound.
func (d *PhysicalDetector) WCDL() int { return d.model.WCDL() }

// Fork returns an independent detector over the same grid whose latency
// stream is a pure function of seed (see Detector.Fork).
func (d *PhysicalDetector) Fork(seed int64) Sampler {
	nd, err := NewPhysicalDetector(d.model, seed)
	if err != nil {
		// The receiver already validated the model; unreachable.
		panic(err)
	}
	return nd
}

// Reseed resets the latency stream in place to what Fork(seed) would
// produce, without allocating (see Detector.Reseed).
func (d *PhysicalDetector) Reseed(seed int64) { d.rng.Reseed(seed) }
