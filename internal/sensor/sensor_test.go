package sensor

import "testing"

func TestPublishedOperatingPoints(t *testing.T) {
	// The paper's §6.1: 300 sensors -> ~10 cycles WCDL at 2.5GHz, 1mm²;
	// 30 sensors -> ~30 cycles.
	w300 := Model{Sensors: 300, DieAreaMM2: 1.0, ClockGHz: 2.5}.WCDL()
	if w300 < 8 || w300 > 12 {
		t.Fatalf("300 sensors at 2.5GHz: WCDL=%d, want ~10", w300)
	}
	w30 := Model{Sensors: 30, DieAreaMM2: 1.0, ClockGHz: 2.5}.WCDL()
	if w30 < 25 || w30 > 36 {
		t.Fatalf("30 sensors at 2.5GHz: WCDL=%d, want ~30", w30)
	}
}

func TestWCDLMonotonicity(t *testing.T) {
	// More sensors -> lower latency; higher clock -> more cycles.
	prev := 1 << 30
	for _, n := range []int{10, 30, 100, 300, 1000} {
		w := Model{Sensors: n, DieAreaMM2: 1.0, ClockGHz: 2.5}.WCDL()
		if w > prev {
			t.Fatalf("WCDL grew with sensors: %d sensors -> %d (prev %d)", n, w, prev)
		}
		prev = w
	}
	w20 := Model{Sensors: 100, DieAreaMM2: 1.0, ClockGHz: 2.0}.WCDL()
	w30 := Model{Sensors: 100, DieAreaMM2: 1.0, ClockGHz: 3.0}.WCDL()
	if w30 < w20 {
		t.Fatalf("higher clock gave lower cycle WCDL: %d vs %d", w30, w20)
	}
}

func TestSensorsForWCDLInverts(t *testing.T) {
	for _, target := range []int{10, 20, 30, 50} {
		n := SensorsForWCDL(target, 1.0, 2.5)
		got := Model{Sensors: n, DieAreaMM2: 1.0, ClockGHz: 2.5}.WCDL()
		if got > target {
			t.Fatalf("SensorsForWCDL(%d)=%d gives WCDL %d", target, n, got)
		}
		if n > 1 {
			worse := Model{Sensors: n - 1, DieAreaMM2: 1.0, ClockGHz: 2.5}.WCDL()
			if worse <= target {
				t.Fatalf("SensorsForWCDL(%d)=%d not minimal (%d sensors suffice)", target, n, n-1)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Model{Sensors: 0, DieAreaMM2: 1, ClockGHz: 1}).Validate(); err == nil {
		t.Fatal("accepted zero sensors")
	}
	if err := (Model{Sensors: 10, DieAreaMM2: 0, ClockGHz: 1}).Validate(); err == nil {
		t.Fatal("accepted zero area")
	}
	if err := (Model{Sensors: 10, DieAreaMM2: 1, ClockGHz: 2.5}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDetectorBounds(t *testing.T) {
	d := NewDetector(10, 1)
	for i := 0; i < 1000; i++ {
		l := d.Latency()
		if l < 1 || l > 10 {
			t.Fatalf("latency %d outside [1,10]", l)
		}
	}
	if d.WCDL() != 10 {
		t.Fatalf("WCDL() = %d", d.WCDL())
	}
}

func TestDetectorDeterminism(t *testing.T) {
	a, b := NewDetector(30, 7), NewDetector(30, 7)
	for i := 0; i < 100; i++ {
		if a.Latency() != b.Latency() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPhysicalDetectorBounds(t *testing.T) {
	m := Model{Sensors: 300, DieAreaMM2: 1.0, ClockGHz: 2.5}
	d, err := NewPhysicalDetector(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := d.WCDL()
	var sum int
	for i := 0; i < 2000; i++ {
		l := d.Latency()
		if l < 1 || l > w {
			t.Fatalf("latency %d outside [1,%d]", l, w)
		}
		sum += l
	}
	// Grid placement front-loads the distribution: the mean must fall
	// well below the worst case.
	mean := float64(sum) / 2000
	if mean > 0.8*float64(w) {
		t.Fatalf("mean latency %.1f too close to WCDL %d for a grid mesh", mean, w)
	}
}

func TestPhysicalDetectorFewerSensorsSlower(t *testing.T) {
	many, err := NewPhysicalDetector(Model{Sensors: 300, DieAreaMM2: 1, ClockGHz: 2.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	few, err := NewPhysicalDetector(Model{Sensors: 30, DieAreaMM2: 1, ClockGHz: 2.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(d *PhysicalDetector) float64 {
		s := 0
		for i := 0; i < 3000; i++ {
			s += d.Latency()
		}
		return float64(s) / 3000
	}
	if avg(few) <= avg(many) {
		t.Fatal("sparser mesh not slower on average")
	}
}

func TestPhysicalDetectorValidation(t *testing.T) {
	if _, err := NewPhysicalDetector(Model{Sensors: 0, DieAreaMM2: 1, ClockGHz: 1}, 1); err == nil {
		t.Fatal("accepted invalid model")
	}
}

func TestForkStreamsAreIndependentAndPure(t *testing.T) {
	// A fork's stream is a pure function of its seed — same seed, same
	// stream — and does not perturb (or depend on) the parent's stream.
	det := NewDetector(10, 1)
	drawn := det.Latency() // advance the parent
	a1, a2 := det.Fork(7), det.Fork(7)
	for i := 0; i < 64; i++ {
		la, lb := a1.Latency(), a2.Latency()
		if la != lb {
			t.Fatalf("fork stream not pure at draw %d: %d vs %d", i, la, lb)
		}
		if la < 1 || la > det.WCDL() {
			t.Fatalf("forked latency %d outside [1, %d]", la, det.WCDL())
		}
	}
	det2 := NewDetector(10, 1)
	if det2.Latency() != drawn {
		t.Fatal("forking perturbed the parent stream")
	}

	pd, err := NewPhysicalDetector(Model{Sensors: 300, DieAreaMM2: 1, ClockGHz: 2.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := pd.Fork(11), pd.Fork(11)
	diffSeed := pd.Fork(12)
	same := true
	for i := 0; i < 64; i++ {
		la, lb := p1.Latency(), p2.Latency()
		if la != lb {
			t.Fatalf("physical fork stream not pure at draw %d", i)
		}
		if la < 1 || la > pd.WCDL() {
			t.Fatalf("physical forked latency %d outside [1, %d]", la, pd.WCDL())
		}
		if diffSeed.Latency() != la {
			same = false
		}
	}
	if same {
		t.Fatal("different fork seeds produced identical physical streams")
	}
}
