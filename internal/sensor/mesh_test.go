package sensor

import "testing"

func TestMeshValidate(t *testing.T) {
	base := Model{Sensors: 300, DieAreaMM2: 1.0, ClockGHz: 2.5}
	cases := []struct {
		name string
		mesh Mesh
		ok   bool
	}{
		{"healthy", Mesh{Model: base}, true},
		{"some dead", Mesh{Model: base, DeadSensors: 100, MissProb: 0.5, LateFactor: 4}, true},
		{"all dead", Mesh{Model: base, DeadSensors: 300}, false},
		{"negative dead", Mesh{Model: base, DeadSensors: -1}, false},
		{"miss prob over 1", Mesh{Model: base, MissProb: 1.5}, false},
		{"negative miss prob", Mesh{Model: base, MissProb: -0.1}, false},
		{"negative late factor", Mesh{Model: base, LateFactor: -1}, false},
		{"bad model", Mesh{Model: Model{Sensors: 0, DieAreaMM2: 1, ClockGHz: 2.5}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.mesh.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

func TestMeshEffectiveWCDLWorsens(t *testing.T) {
	base := Model{Sensors: 300, DieAreaMM2: 1.0, ClockGHz: 2.5}
	healthy := Mesh{Model: base}
	if got, want := healthy.EffectiveWCDL(), healthy.NominalWCDL(); got != want {
		t.Fatalf("healthy mesh effective WCDL %d != nominal %d", got, want)
	}
	degraded := Mesh{Model: base, DeadSensors: 225} // 75 alive: 4x the cell area
	if degraded.EffectiveWCDL() <= degraded.NominalWCDL() {
		t.Fatalf("dead sensors did not worsen WCDL: eff %d, nominal %d",
			degraded.EffectiveWCDL(), degraded.NominalWCDL())
	}
	if got, want := degraded.Alive(), 75; got != want {
		t.Fatalf("Alive() = %d, want %d", got, want)
	}
}

func TestMeshDetectorSampleBounds(t *testing.T) {
	m := Mesh{
		Model:       Model{Sensors: 300, DieAreaMM2: 1.0, ClockGHz: 2.5},
		DeadSensors: 200,
		MissProb:    0.3,
		LateFactor:  4,
	}
	d, err := NewMeshDetector(m, 99)
	if err != nil {
		t.Fatal(err)
	}
	nominal := m.NominalWCDL()
	_, lateHi := m.lateBound()
	missed, timely := 0, 0
	for i := 0; i < 20_000; i++ {
		det := d.Sample()
		if det.Latency < 1 || det.Latency > lateHi {
			t.Fatalf("latency %d outside [1, %d]", det.Latency, lateHi)
		}
		if det.Missed != (det.Latency > nominal) {
			t.Fatalf("Missed=%v inconsistent with latency %d vs nominal %d",
				det.Missed, det.Latency, nominal)
		}
		if det.Missed {
			missed++
		} else {
			timely++
		}
	}
	if missed == 0 {
		t.Fatal("degraded mesh with MissProb 0.3 produced no missed detections")
	}
	if timely == 0 {
		t.Fatal("mesh produced no timely detections")
	}
}

func TestMeshDetectorDeadSensorsAloneCauseMisses(t *testing.T) {
	// MissProb = 0, but 8/9 of the mesh is dead: the effective window
	// stretches well past nominal, so Missed detections must appear.
	m := Mesh{
		Model:       Model{Sensors: 900, DieAreaMM2: 1.0, ClockGHz: 2.5},
		DeadSensors: 800,
	}
	d, err := NewMeshDetector(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	missed := 0
	for i := 0; i < 10_000; i++ {
		if d.Sample().Missed {
			missed++
		}
	}
	if missed == 0 {
		t.Fatalf("no misses despite effective WCDL %d > nominal %d",
			m.EffectiveWCDL(), m.NominalWCDL())
	}
}

func TestMeshDetectorForkPure(t *testing.T) {
	m := Mesh{
		Model:       Model{Sensors: 300, DieAreaMM2: 1.0, ClockGHz: 2.5},
		DeadSensors: 50,
		MissProb:    0.2,
		LateFactor:  3,
	}
	d, err := NewMeshDetector(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := d.ForkMesh(77), d.ForkMesh(77)
	for i := 0; i < 500; i++ {
		da, db := a.Sample(), b.Sample()
		if da != db {
			t.Fatalf("same-seed forks diverged at draw %d: %+v vs %+v", i, da, db)
		}
	}
	// Forking must not perturb the parent either.
	p1, err := NewMeshDetector(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	p1.ForkMesh(123)
	d2, _ := NewMeshDetector(m, 1)
	for i := 0; i < 100; i++ {
		if p1.Sample() != d2.Sample() {
			t.Fatalf("fork perturbed parent stream at draw %d", i)
		}
	}
}

// Satellite: table-driven edge cases for Model.WCDL and Validate.
func TestWCDLEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		model Model
		check func(t *testing.T, w int)
	}{
		{
			"one sensor small die",
			Model{Sensors: 1, DieAreaMM2: 1.0, ClockGHz: 2.5},
			func(t *testing.T, w int) {
				if w < 1 {
					t.Fatalf("WCDL %d < 1", w)
				}
			},
		},
		{
			"tiny die clamps to 1 cycle",
			Model{Sensors: 1000, DieAreaMM2: 1e-9, ClockGHz: 2.5},
			func(t *testing.T, w int) {
				if w != 1 {
					t.Fatalf("WCDL %d, want clamp to 1", w)
				}
			},
		},
		{
			"huge die stays finite and large",
			Model{Sensors: 1, DieAreaMM2: 1e6, ClockGHz: 2.5},
			func(t *testing.T, w int) {
				if w <= 1000 {
					t.Fatalf("WCDL %d suspiciously small for a 1e6 mm² die", w)
				}
			},
		},
		{
			"slow clock clamps to 1 cycle",
			Model{Sensors: 300, DieAreaMM2: 1.0, ClockGHz: 1e-6},
			func(t *testing.T, w int) {
				if w != 1 {
					t.Fatalf("WCDL %d, want clamp to 1", w)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.model.Validate(); err != nil {
				t.Fatalf("Validate() = %v for a model WCDL must handle", err)
			}
			tc.check(t, tc.model.WCDL())
		})
	}
}

func TestValidateEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		model Model
		ok    bool
	}{
		{"zero sensors", Model{Sensors: 0, DieAreaMM2: 1, ClockGHz: 2.5}, false},
		{"negative sensors", Model{Sensors: -5, DieAreaMM2: 1, ClockGHz: 2.5}, false},
		{"zero area", Model{Sensors: 1, DieAreaMM2: 0, ClockGHz: 2.5}, false},
		{"negative area", Model{Sensors: 1, DieAreaMM2: -1, ClockGHz: 2.5}, false},
		{"zero clock", Model{Sensors: 1, DieAreaMM2: 1, ClockGHz: 0}, false},
		{"minimal valid", Model{Sensors: 1, DieAreaMM2: 1e-12, ClockGHz: 1e-12}, true},
		{"paper operating point", Model{Sensors: 300, DieAreaMM2: 1, ClockGHz: 2.5}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.model.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}
