package sensor

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Mesh models an imperfect deployment of a sensor Model: some sensors
// are dead (enlarging the surviving sensors' cells and therefore the
// real detection bound), and environmental noise makes a fraction of
// strikes audible only to a farther sensor, pushing their detection
// latency past the WCDL the pipeline was provisioned for. The pipeline
// keeps believing the nominal WCDL — that gap between advertised and
// actual bound is exactly what the containment machinery has to absorb.
type Mesh struct {
	// Model is the nominal, fully-healthy deployment.
	Model Model
	// DeadSensors is how many of Model.Sensors are offline.
	DeadSensors int
	// MissProb is the per-strike probability that the nearest live
	// sensor misses the wave and a farther one detects it late —
	// beyond the *nominal* WCDL.
	MissProb float64
	// LateFactor bounds late detections at LateFactor × nominal WCDL
	// (the farthest sensor that can still hear the attenuated wave).
	// Values below 2 are raised to 2 so a late detection is always
	// distinguishable from a timely one.
	LateFactor float64
}

// Validate checks the mesh configuration.
func (m Mesh) Validate() error {
	if err := m.Model.Validate(); err != nil {
		return err
	}
	if m.DeadSensors < 0 || m.DeadSensors >= m.Model.Sensors {
		return fmt.Errorf("sensor: %d dead of %d sensors", m.DeadSensors, m.Model.Sensors)
	}
	if m.MissProb < 0 || m.MissProb > 1 {
		return fmt.Errorf("sensor: miss probability %v outside [0,1]", m.MissProb)
	}
	if m.LateFactor < 0 {
		return fmt.Errorf("sensor: negative late factor %v", m.LateFactor)
	}
	return nil
}

// Alive returns the number of live sensors.
func (m Mesh) Alive() int { return m.Model.Sensors - m.DeadSensors }

// Effective returns the Model describing the surviving sensors: same
// die, same clock, fewer sensors — so bigger cells and a worse WCDL.
func (m Mesh) Effective() Model {
	eff := m.Model
	eff.Sensors = m.Alive()
	return eff
}

// NominalWCDL is the detection bound the pipeline was provisioned for
// (every sensor alive).
func (m Mesh) NominalWCDL() int { return m.Model.WCDL() }

// EffectiveWCDL is the real detection bound of the degraded mesh.
// With no dead sensors it equals NominalWCDL.
func (m Mesh) EffectiveWCDL() int { return m.Effective().WCDL() }

// lateBound returns the (exclusive lower, inclusive upper) latency
// window for late detections.
func (m Mesh) lateBound() (int, int) {
	nominal := m.NominalWCDL()
	lf := m.LateFactor
	if lf < 2 {
		lf = 2
	}
	hi := int(math.Ceil(lf * float64(nominal)))
	if hi <= nominal {
		hi = nominal + 1
	}
	return nominal, hi
}

// Detection is one sampled strike-detection event.
type Detection struct {
	// Latency is the cycles from strike to detection.
	Latency int
	// Missed reports that the detection landed beyond the nominal
	// WCDL — the window the pipeline sizes its region buffer for.
	Missed bool
}

// MeshDetector samples strike detections from a degraded mesh on a
// SplitMix64 stream, so a campaign's adversarial events are a pure
// function of (seed, trial) regardless of worker count.
type MeshDetector struct {
	mesh    Mesh
	eff     int
	nominal int
	rng     *rng.Stream
}

// NewMeshDetector builds a detector for the mesh and seed.
func NewMeshDetector(m Mesh, seed int64) (*MeshDetector, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &MeshDetector{
		mesh:    m,
		eff:     m.EffectiveWCDL(),
		nominal: m.NominalWCDL(),
		rng:     rng.New(seed),
	}, nil
}

// Mesh returns the detector's mesh configuration.
func (d *MeshDetector) Mesh() Mesh { return d.mesh }

// WCDL returns the *nominal* bound — what the pipeline believes.
func (d *MeshDetector) WCDL() int { return d.nominal }

// Sample draws one detection. Timely detections are uniform in
// [1, effective WCDL]: dead sensors stretch the window past the nominal
// bound on their own, so a sufficiently degraded mesh produces Missed
// detections even with MissProb = 0. An explicit miss (probability
// MissProb) lands uniformly in (nominal, LateFactor × nominal].
func (d *MeshDetector) Sample() Detection {
	var lat int
	if d.mesh.MissProb > 0 && d.rng.Float64() < d.mesh.MissProb {
		lo, hi := d.mesh.lateBound()
		lat = lo + 1 + d.rng.Intn(hi-lo)
	} else {
		lat = 1 + d.rng.Intn(d.eff)
	}
	return Detection{Latency: lat, Missed: lat > d.nominal}
}

// Latency implements Sampler by discarding the Missed flag. Campaigns
// that want the adversarial semantics call Sample directly.
func (d *MeshDetector) Latency() int { return d.Sample().Latency }

// Fork returns an independent detector over the same mesh whose stream
// is a pure function of seed (see Detector.Fork).
func (d *MeshDetector) Fork(seed int64) Sampler {
	nd, err := NewMeshDetector(d.mesh, seed)
	if err != nil {
		// The receiver already validated the mesh; unreachable.
		panic(err)
	}
	return nd
}

// ForkMesh is Fork without the interface wrapper, for callers that need
// Sample.
func (d *MeshDetector) ForkMesh(seed int64) *MeshDetector {
	return d.Fork(seed).(*MeshDetector)
}

// Reseed resets the detection stream in place to what ForkMesh(seed)
// would produce, without allocating (see Detector.Reseed).
func (d *MeshDetector) Reseed(seed int64) { d.rng.Reseed(seed) }
